#include "snapshot/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/wire.hpp"
#include "faults/fault_plan.hpp"
#include "obs/json.hpp"

namespace perdnn::snapshot {

namespace {

constexpr char kMagic[8] = {'P', 'D', 'N', 'N', 'S', 'N', 'P', '1'};

// The fixed-width encoding and the magic|version|size|payload|checksum
// frame live in common/wire.hpp, shared with the event-journal codec.
using wire::fnv1a;
using wire::Reader;
using wire::Writer;

// -- field-group codecs ------------------------------------------------------

void write_rng(Writer& w, const Rng::State& s) {
  for (std::uint64_t word : s.s) w.u64(word);
  w.f64(s.cached_normal);
  w.boolean(s.has_cached_normal);
}

Rng::State read_rng(Reader& r) {
  Rng::State s;
  for (auto& word : s.s) word = r.u64();
  s.cached_normal = r.f64();
  s.has_cached_normal = r.boolean();
  return s;
}

void write_stats(Writer& w, const GpuStats& s) {
  w.i32(s.num_clients);
  w.f64(s.kernel_util);
  w.f64(s.mem_util);
  w.f64(s.mem_usage_mb);
  w.f64(s.temperature_c);
  w.i32(s.age_intervals);
}

GpuStats read_stats(Reader& r) {
  GpuStats s;
  s.num_clients = r.i32();
  s.kernel_util = r.f64();
  s.mem_util = r.f64();
  s.mem_usage_mb = r.f64();
  s.temperature_c = r.f64();
  s.age_intervals = r.i32();
  return s;
}

void write_levels(Writer& w, const std::vector<LoadLevelSnapshot>& levels) {
  w.count(levels.size());
  for (const LoadLevelSnapshot& lvl : levels) {
    w.i32(lvl.load);
    write_stats(w, lvl.stats);
  }
}

std::vector<LoadLevelSnapshot> read_levels(Reader& r) {
  std::vector<LoadLevelSnapshot> levels(r.count(44));
  for (LoadLevelSnapshot& lvl : levels) {
    lvl.load = r.i32();
    lvl.stats = read_stats(r);
  }
  return levels;
}

void write_metrics(Writer& w, const SimulationMetrics& m) {
  w.i64(m.cold_window_queries);
  w.i32(m.server_changes);
  w.i32(m.hits);
  w.i32(m.partials);
  w.i32(m.misses);
  w.i32(m.server_failures);
  w.i32(m.failure_evictions);
  w.i64(m.routed_queries);
  w.i32(m.client_disconnect_events);
  w.i64(m.local_fallback_queries);
  w.f64(m.local_latency_sum_s);
  w.i64(m.attached_client_intervals);
  w.i64(m.unreachable_client_intervals);
  w.i64(m.offline_client_intervals);
  w.i32(m.degraded_attaches);
  w.i32(m.migrations_deferred);
  w.i32(m.migration_retries);
  w.i32(m.migrations_abandoned);
  w.i32(m.migrations_truncated);
  w.i64(m.deferred_migration_bytes);
  w.i64(m.abandoned_migration_bytes);
  w.i64(m.peak_deferred_backlog_bytes);
  w.f64(m.peak_uplink_mbps);
  w.f64(m.peak_downlink_mbps);
  w.f64(m.fraction_servers_within_100mbps);
  w.f64(m.fraction_servers_within_100mbps_at_peak);
  w.i64(m.total_migrated_bytes);
  w.count(m.server_peak_uplink_mbps.size());
  for (double v : m.server_peak_uplink_mbps) w.f64(v);
  w.i32(m.num_servers);
  w.i32(m.num_clients);
  w.i32(m.num_intervals);
  w.i32(m.attaches_shed);  // appended in version 4
  // Budgeted-cache counters, appended in version 5.
  w.i64(m.cache_evictions);
  w.i64(m.cache_partial_stores);
  w.i64(m.peak_cache_bytes);
}

SimulationMetrics read_metrics(Reader& r, std::uint32_t version) {
  SimulationMetrics m;
  m.cold_window_queries = r.i64();
  m.server_changes = r.i32();
  m.hits = r.i32();
  m.partials = r.i32();
  m.misses = r.i32();
  m.server_failures = r.i32();
  m.failure_evictions = r.i32();
  m.routed_queries = r.i64();
  m.client_disconnect_events = r.i32();
  m.local_fallback_queries = r.i64();
  m.local_latency_sum_s = r.f64();
  m.attached_client_intervals = r.i64();
  m.unreachable_client_intervals = r.i64();
  m.offline_client_intervals = r.i64();
  m.degraded_attaches = r.i32();
  m.migrations_deferred = r.i32();
  m.migration_retries = r.i32();
  m.migrations_abandoned = r.i32();
  m.migrations_truncated = r.i32();
  m.deferred_migration_bytes = r.i64();
  m.abandoned_migration_bytes = r.i64();
  m.peak_deferred_backlog_bytes = r.i64();
  m.peak_uplink_mbps = r.f64();
  m.peak_downlink_mbps = r.f64();
  m.fraction_servers_within_100mbps = r.f64();
  m.fraction_servers_within_100mbps_at_peak = r.f64();
  m.total_migrated_bytes = r.i64();
  m.server_peak_uplink_mbps.resize(r.count(8));
  for (double& v : m.server_peak_uplink_mbps) v = r.f64();
  m.num_servers = r.i32();
  m.num_clients = r.i32();
  m.num_intervals = r.i32();
  if (version >= 4) m.attaches_shed = r.i32();
  if (version >= 5) {
    m.cache_evictions = r.i64();
    m.cache_partial_stores = r.i64();
    m.peak_cache_bytes = r.i64();
  }
  return m;
}

void write_row(Writer& w, const obs::TimeseriesRow& row) {
  w.i32(row.interval);
  w.i32(row.server);
  w.i32(row.attached);
  w.i32(row.hits);
  w.i32(row.partials);
  w.i32(row.misses);
  w.i64(row.cold_window_queries);
  w.f64(row.cold_latency_sum_s);
  w.i64(row.uplink_bytes);
  w.i64(row.downlink_bytes);
  w.i32(row.migration_orders);
  w.i32(row.predictor_samples);
  w.f64(row.predictor_error_sum_m);
  w.i64(row.local_queries);
  w.f64(row.local_latency_sum_s);
  w.i64(row.deferred_bytes);
  w.i32(row.degraded);
  // Budgeted-cache columns, appended in version 5.
  w.i64(row.cache_bytes);
  w.i32(row.cache_evictions);
  w.i32(row.cache_partial_stores);
}

obs::TimeseriesRow read_row(Reader& r, std::uint32_t version) {
  obs::TimeseriesRow row;
  row.interval = r.i32();
  row.server = r.i32();
  row.attached = r.i32();
  row.hits = r.i32();
  row.partials = r.i32();
  row.misses = r.i32();
  row.cold_window_queries = r.i64();
  row.cold_latency_sum_s = r.f64();
  row.uplink_bytes = r.i64();
  row.downlink_bytes = r.i64();
  row.migration_orders = r.i32();
  row.predictor_samples = r.i32();
  row.predictor_error_sum_m = r.f64();
  row.local_queries = r.i64();
  row.local_latency_sum_s = r.f64();
  row.deferred_bytes = r.i64();
  row.degraded = r.i32();
  if (version >= 5) {
    row.cache_bytes = r.i64();
    row.cache_evictions = r.i32();
    row.cache_partial_stores = r.i32();
  }
  return row;
}

void write_bytes_matrix(Writer& w,
                        const std::vector<std::vector<Bytes>>& matrix) {
  w.count(matrix.size());
  for (const auto& row : matrix) {
    w.count(row.size());
    for (Bytes b : row) w.i64(b);
  }
}

std::vector<std::vector<Bytes>> read_bytes_matrix(Reader& r) {
  std::vector<std::vector<Bytes>> matrix(r.count(8));
  for (auto& row : matrix) {
    row.resize(r.count(8));
    for (Bytes& b : row) b = r.i64();
  }
  return matrix;
}

void write_journal(Writer& w, const obs::JournalState& j) {
  w.count(j.events.size());
  for (const obs::JournalEvent& e : j.events) {
    w.i32(e.interval);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.chain);
    w.i32(e.client);
    w.i32(e.server);
    w.i32(e.peer);
    w.i64(e.bytes);
    w.i32(e.detail);
    w.i32(e.aux);
    w.f64(e.value);
  }
  w.u64(j.next_chain);
  w.u64(j.dropped);
  w.count(j.client_chains.size());
  for (const auto& [client, chain] : j.client_chains) {
    w.i32(client);
    w.u64(chain);
  }
}

obs::JournalState read_journal(Reader& r) {
  obs::JournalState j;
  // Per-event wire size: 4+1+8+4+4+4+8+4+4+8 bytes.
  j.events.resize(r.count(49));
  for (obs::JournalEvent& e : j.events) {
    e.interval = r.i32();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(obs::JournalEventKind::kCachePartial))
      throw SnapshotError("snapshot: journal event kind out of range");
    e.kind = static_cast<obs::JournalEventKind>(kind);
    e.chain = r.u64();
    e.client = r.i32();
    e.server = r.i32();
    e.peer = r.i32();
    e.bytes = r.i64();
    e.detail = r.i32();
    e.aux = r.i32();
    e.value = r.f64();
  }
  j.next_chain = r.u64();
  j.dropped = r.u64();
  j.client_chains.resize(r.count(12));
  for (auto& [client, chain] : j.client_chains) {
    client = r.i32();
    chain = r.u64();
  }
  return j;
}

void write_shard(Writer& w, const ShardSimState& s) {
  const auto write_f64s = [&](const std::vector<double>& v) {
    w.count(v.size());
    for (double x : v) w.f64(x);
  };
  const auto write_i32s = [&](const std::vector<std::int32_t>& v) {
    w.count(v.size());
    for (std::int32_t x : v) w.i32(x);
  };
  const auto write_u32s = [&](const std::vector<std::uint32_t>& v) {
    w.count(v.size());
    for (std::uint32_t x : v) w.u32(x);
  };
  write_f64s(s.x);
  write_f64s(s.y);
  write_f64s(s.heading);
  write_i32s(s.server);
  write_u32s(s.prefix);
  w.count(s.carry.size());
  for (std::int64_t x : s.carry) w.i64(x);
  write_i32s(s.offline_until);
  write_i32s(s.entry_server);
  write_i32s(s.entry_client);
  write_i32s(s.entry_expire);
  write_u32s(s.entry_prefix);
  write_f64s(s.peak_uplink_mbps);
  write_f64s(s.peak_downlink_mbps);
  w.i64(s.best_interval_bytes);
  w.f64(s.best_interval_fraction);
  w.u64(s.timeseries_bytes);
  w.u64(s.timeseries_rows);
  w.u64(s.journal_bytes);
  w.u64(s.journal_events);
  w.u64(s.journal_next_chain);
  w.count(s.client_chains.size());
  for (const auto& [client, chain] : s.client_chains) {
    w.i32(client);
    w.u64(chain);
  }
  // v3.1 retry-queue arrays, appended in version 4.
  write_i32s(s.retry_client);
  write_i32s(s.retry_source);
  write_i32s(s.retry_target);
  write_u32s(s.retry_prefix);
  w.count(s.retry_bytes.size());
  for (std::int64_t x : s.retry_bytes) w.i64(x);
  write_i32s(s.retry_attempts);
  write_i32s(s.retry_next_attempt);
}

ShardSimState read_shard(Reader& r, std::uint32_t version) {
  ShardSimState s;
  const auto read_f64s = [&](std::vector<double>& v) {
    v.resize(r.count(8));
    for (double& x : v) x = r.f64();
  };
  const auto read_i32s = [&](std::vector<std::int32_t>& v) {
    v.resize(r.count(4));
    for (std::int32_t& x : v) x = r.i32();
  };
  const auto read_u32s = [&](std::vector<std::uint32_t>& v) {
    v.resize(r.count(4));
    for (std::uint32_t& x : v) x = r.u32();
  };
  read_f64s(s.x);
  read_f64s(s.y);
  read_f64s(s.heading);
  read_i32s(s.server);
  read_u32s(s.prefix);
  s.carry.resize(r.count(8));
  for (std::int64_t& x : s.carry) x = r.i64();
  read_i32s(s.offline_until);
  read_i32s(s.entry_server);
  read_i32s(s.entry_client);
  read_i32s(s.entry_expire);
  read_u32s(s.entry_prefix);
  read_f64s(s.peak_uplink_mbps);
  read_f64s(s.peak_downlink_mbps);
  s.best_interval_bytes = r.i64();
  s.best_interval_fraction = r.f64();
  s.timeseries_bytes = r.u64();
  s.timeseries_rows = r.u64();
  s.journal_bytes = r.u64();
  s.journal_events = r.u64();
  s.journal_next_chain = r.u64();
  s.client_chains.resize(r.count(12));
  for (auto& [client, chain] : s.client_chains) {
    client = r.i32();
    chain = r.u64();
  }
  if (version >= 4) {
    read_i32s(s.retry_client);
    read_i32s(s.retry_source);
    read_i32s(s.retry_target);
    read_u32s(s.retry_prefix);
    s.retry_bytes.resize(r.count(8));
    for (std::int64_t& x : s.retry_bytes) x = r.i64();
    read_i32s(s.retry_attempts);
    read_i32s(s.retry_next_attempt);
    const std::size_t n = s.retry_client.size();
    if (s.retry_source.size() != n || s.retry_target.size() != n ||
        s.retry_prefix.size() != n || s.retry_bytes.size() != n ||
        s.retry_attempts.size() != n || s.retry_next_attempt.size() != n)
      throw SnapshotError("snapshot: retry-queue arrays disagree on length");
  }
  return s;
}

}  // namespace

// -- config fingerprint ------------------------------------------------------

namespace {

class FingerprintHasher {
 public:
  void mix(std::uint64_t v) {
    state_ ^= v;
    digest_ ^= splitmix64(state_);
  }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix_string(const std::string& s) {
    mix(s.size());
    mix(fnv1a(s.data(), s.size()));
  }
  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t state_ = 0x50e1f1ed5eedULL;
  std::uint64_t digest_ = 0;
};

}  // namespace

std::uint64_t config_fingerprint(const SimulationConfig& config,
                                 const SimulationWorld& world) {
  // Chained splitmix64 over every knob that can change the simulation's
  // byte-level behaviour, plus the world's shape. Thread count and the
  // fastpath toggle are excluded on purpose: both are proven
  // byte-identity-neutral by the tier-1 determinism gate, so a checkpoint
  // moves freely across them.
  FingerprintHasher h;
  h.mix(static_cast<std::uint64_t>(config.model));
  h.mix(static_cast<std::uint64_t>(config.policy));
  h.mix_double(config.migration_radius_m);
  h.mix(static_cast<std::uint64_t>(config.ttl_intervals));
  h.mix(static_cast<std::uint64_t>(config.trajectory_length));
  h.mix_double(config.query_gap);
  h.mix_double(config.cell_radius_m);
  h.mix_double(config.wireless.uplink_bytes_per_sec);
  h.mix_double(config.wireless.downlink_bytes_per_sec);
  h.mix_double(config.wireless.rtt);
  h.mix_double(config.bandwidth_jitter_sigma);
  h.mix(static_cast<std::uint64_t>(config.selection));
  h.mix_double(config.visibility_radius_m);
  h.mix(static_cast<std::uint64_t>(config.predictor));
  h.mix_double(config.server_failure_rate);
  h.mix(static_cast<std::uint64_t>(config.server_downtime_intervals));
  h.mix_string(config.fault_plan.to_json());
  h.mix(static_cast<std::uint64_t>(config.migration_retry.max_attempts));
  h.mix(static_cast<std::uint64_t>(
      config.migration_retry.initial_backoff_intervals));
  h.mix(static_cast<std::uint64_t>(
      config.migration_retry.max_backoff_intervals));
  h.mix(config.routing_fallback ? 1 : 0);
  h.mix_double(config.backhaul_bytes_per_sec);
  h.mix_double(config.backhaul_rtt);
  h.mix(config.crowded_servers.size());
  for (ServerId s : config.crowded_servers)
    h.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
  h.mix(static_cast<std::uint64_t>(config.crowded_byte_budget));
  h.mix(config.seed);
  h.mix(static_cast<std::uint64_t>(world.servers.num_servers()));
  h.mix(world.test_traces.size());
  for (const Trajectory& trace : world.test_traces)
    h.mix(trace.points.size());
  h.mix_double(world.interval);
  h.mix(static_cast<std::uint64_t>(world.model.num_layers()));
  // Appended in version 5: the per-server cache byte budget.
  h.mix(static_cast<std::uint64_t>(config.cache_budget_bytes));
  return h.digest();
}

// -- encode / decode ---------------------------------------------------------

std::string encode(const SimSnapshot& snap) {
  Writer payload;
  payload.u64(snap.config_fingerprint);
  payload.i32(snap.next_interval);
  payload.i32(snap.num_intervals);
  write_rng(payload, snap.rng);
  write_rng(payload, snap.link_rng);

  payload.count(snap.caches.size());
  for (const auto& entries : snap.caches) {
    payload.count(entries.size());
    for (const LayerCache::EntrySnapshot& e : entries) {
      payload.i32(e.client);
      payload.i32(e.expires_at);
      payload.count(e.layers.size());
      for (LayerId id : e.layers) payload.i32(id);
      payload.i64(e.bytes);  // appended in version 5
    }
  }

  payload.count(snap.dispatcher.queue.size());
  for (const DeferredMigration& order : snap.dispatcher.queue) {
    payload.i32(order.client);
    payload.i32(order.source);
    payload.i32(order.target);
    payload.count(order.layers.size());
    for (LayerId id : order.layers) payload.i32(id);
    payload.i64(order.bytes);
    payload.i32(order.attempts);
    payload.i32(order.next_attempt_interval);
  }
  payload.i64(snap.dispatcher.backlog_bytes);
  payload.i64(snap.dispatcher.total_deferred_bytes);
  payload.i64(snap.dispatcher.abandoned_bytes);
  payload.i32(snap.dispatcher.deferred_orders);
  payload.i32(snap.dispatcher.abandoned_orders);
  payload.i32(snap.dispatcher.retries);

  write_bytes_matrix(payload, snap.traffic.uplink_history);
  write_bytes_matrix(payload, snap.traffic.downlink_history);
  payload.count(snap.traffic.uplink_current.size());
  for (Bytes b : snap.traffic.uplink_current) payload.i64(b);
  payload.count(snap.traffic.downlink_current.size());
  for (Bytes b : snap.traffic.downlink_current) payload.i64(b);
  payload.boolean(snap.traffic.interval_open);
  payload.i64(snap.traffic.total_bytes);

  payload.count(snap.attached.size());
  for (int a : snap.attached) payload.i32(a);

  payload.count(snap.clients.size());
  for (const ClientSnapshot& c : snap.clients) {
    payload.i32(c.current);
    payload.count(c.pending.size());
    for (LayerId id : c.pending) payload.i32(id);
    payload.i64(c.carry_bytes);
    payload.f64(c.link_factor);
  }

  write_levels(payload, snap.levels);
  write_levels(payload, snap.degraded_levels);
  payload.u64(snap.estimate_cache_hits);
  payload.u64(snap.estimate_cache_misses);
  write_metrics(payload, snap.metrics);

  payload.boolean(snap.has_timeseries);
  payload.count(snap.timeseries_rows.size());
  for (const obs::TimeseriesRow& row : snap.timeseries_rows)
    write_row(payload, row);

  payload.boolean(snap.has_journal);
  write_journal(payload, snap.journal);

  payload.boolean(snap.has_shard);
  if (snap.has_shard) write_shard(payload, snap.shard);

  return wire::frame(kMagic, kSnapshotVersion, payload.bytes());
}

SimSnapshot decode(const std::string& bytes) try {
  // Accept the current version plus version 2 (pre-shard files, their shard
  // section is absent), version 3 (pre-retry-queue files, their retry
  // arrays are empty), and version 4 (pre-budgeted-cache files, their
  // per-entry byte counts are recomputed on restore). Unknown versions fall
  // through to unframe()'s version-mismatch error.
  std::uint32_t version = kSnapshotVersion;
  if (bytes.size() >= 12) {
    Reader vr(bytes.data() + 8, 4);
    const std::uint32_t declared = vr.u32();
    if (declared == 2 || declared == 3 || declared == 4) version = declared;
  }
  Reader r = wire::unframe(bytes, kMagic, version, "snapshot");
  SimSnapshot snap;
  snap.config_fingerprint = r.u64();
  snap.next_interval = r.i32();
  snap.num_intervals = r.i32();
  snap.rng = read_rng(r);
  snap.link_rng = read_rng(r);

  snap.caches.resize(r.count(8));
  for (auto& entries : snap.caches) {
    entries.resize(r.count(16));
    for (LayerCache::EntrySnapshot& e : entries) {
      e.client = r.i32();
      e.expires_at = r.i32();
      e.layers.resize(r.count(4));
      for (LayerId& id : e.layers) id = r.i32();
      if (version >= 5) e.bytes = r.i64();
    }
  }

  snap.dispatcher.queue.resize(r.count(28));
  for (DeferredMigration& order : snap.dispatcher.queue) {
    order.client = r.i32();
    order.source = r.i32();
    order.target = r.i32();
    order.layers.resize(r.count(4));
    for (LayerId& id : order.layers) id = r.i32();
    order.bytes = r.i64();
    order.attempts = r.i32();
    order.next_attempt_interval = r.i32();
  }
  snap.dispatcher.backlog_bytes = r.i64();
  snap.dispatcher.total_deferred_bytes = r.i64();
  snap.dispatcher.abandoned_bytes = r.i64();
  snap.dispatcher.deferred_orders = r.i32();
  snap.dispatcher.abandoned_orders = r.i32();
  snap.dispatcher.retries = r.i32();

  snap.traffic.uplink_history = read_bytes_matrix(r);
  snap.traffic.downlink_history = read_bytes_matrix(r);
  snap.traffic.uplink_current.resize(r.count(8));
  for (Bytes& b : snap.traffic.uplink_current) b = r.i64();
  snap.traffic.downlink_current.resize(r.count(8));
  for (Bytes& b : snap.traffic.downlink_current) b = r.i64();
  snap.traffic.interval_open = r.boolean();
  snap.traffic.total_bytes = r.i64();

  snap.attached.resize(r.count(4));
  for (int& a : snap.attached) a = r.i32();

  snap.clients.resize(r.count(24));
  for (ClientSnapshot& c : snap.clients) {
    c.current = r.i32();
    c.pending.resize(r.count(4));
    for (LayerId& id : c.pending) id = r.i32();
    c.carry_bytes = r.i64();
    c.link_factor = r.f64();
  }

  snap.levels = read_levels(r);
  snap.degraded_levels = read_levels(r);
  snap.estimate_cache_hits = r.u64();
  snap.estimate_cache_misses = r.u64();
  snap.metrics = read_metrics(r, version);

  snap.has_timeseries = r.boolean();
  snap.timeseries_rows.resize(r.count(100));
  for (obs::TimeseriesRow& row : snap.timeseries_rows)
    row = read_row(r, version);

  snap.has_journal = r.boolean();
  snap.journal = read_journal(r);

  if (version >= 3) {
    snap.has_shard = r.boolean();
    if (snap.has_shard) snap.shard = read_shard(r, version);
  }

  if (!r.done())
    throw SnapshotError("snapshot: trailing bytes after the last field");
  return snap;
} catch (const wire::WireError& e) {
  throw SnapshotError(e.what());
}

// -- file I/O ----------------------------------------------------------------

void save(const SimSnapshot& snap, const std::string& path) {
  const std::string bytes = encode(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw SnapshotError("snapshot: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: rename to " + path + " failed");
  }
}

SimSnapshot load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw SnapshotError("snapshot: read failed for " + path);
  return decode(buf.str());
}

// -- metrics JSON ------------------------------------------------------------

std::string metrics_to_json(const SimulationMetrics& m) {
  using obs::JsonValue;
  std::vector<std::pair<std::string, JsonValue>> doc;
  const auto num = [&](const char* key, double value) {
    doc.emplace_back(key, JsonValue::make_number(value));
  };
  num("cold_window_queries", static_cast<double>(m.cold_window_queries));
  num("server_changes", m.server_changes);
  num("hits", m.hits);
  num("partials", m.partials);
  num("misses", m.misses);
  num("server_failures", m.server_failures);
  num("failure_evictions", m.failure_evictions);
  num("routed_queries", static_cast<double>(m.routed_queries));
  num("client_disconnect_events", m.client_disconnect_events);
  num("local_fallback_queries",
      static_cast<double>(m.local_fallback_queries));
  num("local_latency_sum_s", m.local_latency_sum_s);
  num("attached_client_intervals",
      static_cast<double>(m.attached_client_intervals));
  num("unreachable_client_intervals",
      static_cast<double>(m.unreachable_client_intervals));
  num("offline_client_intervals",
      static_cast<double>(m.offline_client_intervals));
  num("degraded_attaches", m.degraded_attaches);
  num("migrations_deferred", m.migrations_deferred);
  num("migration_retries", m.migration_retries);
  num("migrations_abandoned", m.migrations_abandoned);
  num("migrations_truncated", m.migrations_truncated);
  // Emitted only when admission control actually shed an attach, so runs
  // without the knob keep their exact pre-existing JSON bytes.
  if (m.attaches_shed != 0) num("attaches_shed", m.attaches_shed);
  num("deferred_migration_bytes",
      static_cast<double>(m.deferred_migration_bytes));
  num("abandoned_migration_bytes",
      static_cast<double>(m.abandoned_migration_bytes));
  num("peak_deferred_backlog_bytes",
      static_cast<double>(m.peak_deferred_backlog_bytes));
  // Budgeted-cache counters — emitted only when a budget actually bit, so
  // unbudgeted runs keep their exact pre-existing JSON bytes.
  if (m.cache_evictions != 0)
    num("cache_evictions", static_cast<double>(m.cache_evictions));
  if (m.cache_partial_stores != 0)
    num("cache_partial_stores", static_cast<double>(m.cache_partial_stores));
  if (m.peak_cache_bytes != 0)
    num("peak_cache_bytes", static_cast<double>(m.peak_cache_bytes));
  num("peak_uplink_mbps", m.peak_uplink_mbps);
  num("peak_downlink_mbps", m.peak_downlink_mbps);
  num("fraction_servers_within_100mbps", m.fraction_servers_within_100mbps);
  num("fraction_servers_within_100mbps_at_peak",
      m.fraction_servers_within_100mbps_at_peak);
  num("total_migrated_bytes", static_cast<double>(m.total_migrated_bytes));
  std::vector<JsonValue> peaks;
  peaks.reserve(m.server_peak_uplink_mbps.size());
  for (double v : m.server_peak_uplink_mbps)
    peaks.push_back(JsonValue::make_number(v));
  doc.emplace_back("server_peak_uplink_mbps",
                   JsonValue::make_array(std::move(peaks)));
  num("num_servers", m.num_servers);
  num("num_clients", m.num_clients);
  num("num_intervals", m.num_intervals);
  return JsonValue::make_object(std::move(doc)).serialize();
}

namespace {

double require_number(const obs::JsonValue& doc, const char* key) {
  const obs::JsonValue* value = doc.find(key);
  if (value == nullptr)
    throw SnapshotError(std::string("metrics json: missing field ") + key);
  return value->as_number();
}

double optional_number(const obs::JsonValue& doc, const char* key,
                       double fallback) {
  const obs::JsonValue* value = doc.find(key);
  return value == nullptr ? fallback : value->as_number();
}

}  // namespace

SimulationMetrics metrics_from_json(const std::string& json) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(json);
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("metrics json: ") + e.what());
  }
  if (!doc.is_object())
    throw SnapshotError("metrics json: document is not an object");
  SimulationMetrics m;
  m.cold_window_queries =
      static_cast<long long>(require_number(doc, "cold_window_queries"));
  m.server_changes = static_cast<int>(require_number(doc, "server_changes"));
  m.hits = static_cast<int>(require_number(doc, "hits"));
  m.partials = static_cast<int>(require_number(doc, "partials"));
  m.misses = static_cast<int>(require_number(doc, "misses"));
  m.server_failures =
      static_cast<int>(require_number(doc, "server_failures"));
  m.failure_evictions =
      static_cast<int>(require_number(doc, "failure_evictions"));
  m.routed_queries =
      static_cast<long long>(require_number(doc, "routed_queries"));
  m.client_disconnect_events =
      static_cast<int>(require_number(doc, "client_disconnect_events"));
  m.local_fallback_queries =
      static_cast<long long>(require_number(doc, "local_fallback_queries"));
  m.local_latency_sum_s = require_number(doc, "local_latency_sum_s");
  m.attached_client_intervals = static_cast<long long>(
      require_number(doc, "attached_client_intervals"));
  m.unreachable_client_intervals = static_cast<long long>(
      require_number(doc, "unreachable_client_intervals"));
  m.offline_client_intervals = static_cast<long long>(
      require_number(doc, "offline_client_intervals"));
  m.degraded_attaches =
      static_cast<int>(require_number(doc, "degraded_attaches"));
  m.migrations_deferred =
      static_cast<int>(require_number(doc, "migrations_deferred"));
  m.migration_retries =
      static_cast<int>(require_number(doc, "migration_retries"));
  m.migrations_abandoned =
      static_cast<int>(require_number(doc, "migrations_abandoned"));
  m.migrations_truncated =
      static_cast<int>(require_number(doc, "migrations_truncated"));
  m.attaches_shed = static_cast<int>(optional_number(doc, "attaches_shed", 0));
  m.deferred_migration_bytes =
      static_cast<Bytes>(require_number(doc, "deferred_migration_bytes"));
  m.abandoned_migration_bytes =
      static_cast<Bytes>(require_number(doc, "abandoned_migration_bytes"));
  m.peak_deferred_backlog_bytes =
      static_cast<Bytes>(require_number(doc, "peak_deferred_backlog_bytes"));
  m.cache_evictions =
      static_cast<long long>(optional_number(doc, "cache_evictions", 0));
  m.cache_partial_stores =
      static_cast<long long>(optional_number(doc, "cache_partial_stores", 0));
  m.peak_cache_bytes =
      static_cast<Bytes>(optional_number(doc, "peak_cache_bytes", 0));
  m.peak_uplink_mbps = require_number(doc, "peak_uplink_mbps");
  m.peak_downlink_mbps = require_number(doc, "peak_downlink_mbps");
  m.fraction_servers_within_100mbps =
      require_number(doc, "fraction_servers_within_100mbps");
  m.fraction_servers_within_100mbps_at_peak =
      require_number(doc, "fraction_servers_within_100mbps_at_peak");
  m.total_migrated_bytes =
      static_cast<Bytes>(require_number(doc, "total_migrated_bytes"));
  const obs::JsonValue* peaks = doc.find("server_peak_uplink_mbps");
  if (peaks == nullptr || !peaks->is_array())
    throw SnapshotError(
        "metrics json: missing or non-array server_peak_uplink_mbps");
  for (const obs::JsonValue& v : peaks->items())
    m.server_peak_uplink_mbps.push_back(v.as_number());
  m.num_servers = static_cast<int>(require_number(doc, "num_servers"));
  m.num_clients = static_cast<int>(require_number(doc, "num_clients"));
  m.num_intervals = static_cast<int>(require_number(doc, "num_intervals"));
  return m;
}

}  // namespace perdnn::snapshot
