// Plain-text persistence for the artifacts a PerDNN deployment moves around:
// DNN profiles (layer metadata a client registers with the master server),
// client-side execution profiles, mobility traces, and profiling records for
// estimator training. The format is line-based, versioned, and
// whitespace-delimited — diff-able and safe to hand-edit.
//
// All loaders validate as they parse and throw std::runtime_error with the
// offending line number on malformed input; loaded models additionally pass
// DnnModel::validate().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "device/device_profile.hpp"
#include "device/profiler.hpp"
#include "mobility/trajectory.hpp"
#include "nn/model.hpp"

namespace perdnn {

// -- DNN models (structure + per-layer metadata; no weights, as in the
//    paper's DNN profile) --
void save_model(const DnnModel& model, std::ostream& out);
DnnModel load_model(std::istream& in);

// -- client execution profiles --
void save_profile(const DnnProfile& profile, std::ostream& out);
DnnProfile load_profile(std::istream& in);

// -- mobility traces --
void save_traces(const std::vector<Trajectory>& traces, std::ostream& out);
std::vector<Trajectory> load_traces(std::istream& in);

// -- profiler records (estimator training sets) --
void save_records(const std::vector<ProfileRecord>& records,
                  std::ostream& out);
std::vector<ProfileRecord> load_records(std::istream& in);

// File-path convenience wrappers (throw std::runtime_error on I/O failure).
void save_model_file(const DnnModel& model, const std::string& path);
DnnModel load_model_file(const std::string& path);
void save_traces_file(const std::vector<Trajectory>& traces,
                      const std::string& path);
std::vector<Trajectory> load_traces_file(const std::string& path);

}  // namespace perdnn
