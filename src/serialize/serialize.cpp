#include "serialize/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace perdnn {

namespace {

constexpr const char* kModelMagic = "perdnn-model v1";
constexpr const char* kProfileMagic = "perdnn-profile v1";
constexpr const char* kTracesMagic = "perdnn-traces v1";
constexpr const char* kRecordsMagic = "perdnn-records v1";

[[noreturn]] void parse_error(int line, const std::string& what) {
  std::ostringstream os;
  os << "parse error at line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

/// Reads one non-empty, non-comment line; returns false at EOF.
bool next_line(std::istream& in, std::string& line, int& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '#') return true;
  }
  return false;
}

void expect_magic(std::istream& in, const char* magic, int& line_no) {
  std::string line;
  if (!next_line(in, line, line_no) || line != magic)
    parse_error(line_no, std::string("expected header '") + magic + "'");
}

const std::map<std::string, LayerKind>& kind_by_name() {
  static const std::map<std::string, LayerKind> map = {
      {"input", LayerKind::kInput},
      {"conv", LayerKind::kConv},
      {"dwconv", LayerKind::kDepthwiseConv},
      {"fc", LayerKind::kFullyConnected},
      {"pool", LayerKind::kPool},
      {"bn", LayerKind::kBatchNorm},
      {"scale", LayerKind::kScale},
      {"relu", LayerKind::kActivation},
      {"softmax", LayerKind::kSoftmax},
      {"concat", LayerKind::kConcat},
      {"add", LayerKind::kEltwiseAdd},
      {"dropout", LayerKind::kDropout},
  };
  return map;
}

}  // namespace

void save_model(const DnnModel& model, std::ostream& out) {
  out << kModelMagic << "\n";
  out << model.name() << "\n";
  out << model.num_layers() << "\n";
  out << std::setprecision(17);
  for (LayerId id = 0; id < model.num_layers(); ++id) {
    const LayerSpec& l = model.layer(id);
    // name kind in_c out_c kernel stride out_h out_w weight output flops
    // n_inputs inputs...
    out << l.name << ' ' << layer_kind_name(l.kind) << ' ' << l.in_channels
        << ' ' << l.out_channels << ' ' << l.kernel << ' ' << l.stride << ' '
        << l.out_height << ' ' << l.out_width << ' ' << l.weight_bytes << ' '
        << l.output_bytes << ' ' << l.flops << ' ' << l.inputs.size();
    for (LayerId in : l.inputs) out << ' ' << in;
    out << "\n";
  }
}

DnnModel load_model(std::istream& in) {
  int line_no = 0;
  std::string line;
  expect_magic(in, kModelMagic, line_no);
  if (!next_line(in, line, line_no)) parse_error(line_no, "missing name");
  DnnModel model(line);
  if (!next_line(in, line, line_no))
    parse_error(line_no, "missing layer count");
  int count = 0;
  try {
    count = std::stoi(line);
  } catch (const std::exception&) {
    parse_error(line_no, "bad layer count '" + line + "'");
  }
  if (count < 0) parse_error(line_no, "negative layer count");

  for (int i = 0; i < count; ++i) {
    if (!next_line(in, line, line_no))
      parse_error(line_no, "unexpected end of layer list");
    std::istringstream row(line);
    LayerSpec spec;
    std::string kind;
    std::size_t n_inputs = 0;
    row >> spec.name >> kind >> spec.in_channels >> spec.out_channels >>
        spec.kernel >> spec.stride >> spec.out_height >> spec.out_width >>
        spec.weight_bytes >> spec.output_bytes >> spec.flops >> n_inputs;
    if (!row) parse_error(line_no, "malformed layer row");
    const auto it = kind_by_name().find(kind);
    if (it == kind_by_name().end())
      parse_error(line_no, "unknown layer kind '" + kind + "'");
    spec.kind = it->second;
    spec.inputs.resize(n_inputs);
    for (auto& input : spec.inputs) row >> input;
    if (!row) parse_error(line_no, "truncated input list");
    try {
      model.add_layer(std::move(spec));
    } catch (const std::logic_error& e) {
      parse_error(line_no, e.what());
    }
  }
  try {
    model.validate();
  } catch (const std::logic_error& e) {
    parse_error(line_no, std::string("invalid model: ") + e.what());
  }
  return model;
}

void save_profile(const DnnProfile& profile, std::ostream& out) {
  out << kProfileMagic << "\n";
  out << profile.model_name << "\n";
  out << profile.client_time.size() << "\n";
  out << std::setprecision(17);
  for (Seconds t : profile.client_time) out << t << "\n";
}

DnnProfile load_profile(std::istream& in) {
  int line_no = 0;
  std::string line;
  expect_magic(in, kProfileMagic, line_no);
  DnnProfile profile;
  if (!next_line(in, line, line_no)) parse_error(line_no, "missing name");
  profile.model_name = line;
  if (!next_line(in, line, line_no)) parse_error(line_no, "missing count");
  std::size_t count = 0;
  try {
    count = std::stoul(line);
  } catch (const std::exception&) {
    parse_error(line_no, "bad count");
  }
  profile.client_time.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!next_line(in, line, line_no))
      parse_error(line_no, "unexpected end of profile");
    std::istringstream row(line);
    Seconds t = 0.0;
    row >> t;
    if (!row || t < 0.0) parse_error(line_no, "bad layer time");
    profile.client_time.push_back(t);
  }
  return profile;
}

void save_traces(const std::vector<Trajectory>& traces, std::ostream& out) {
  out << kTracesMagic << "\n";
  out << traces.size() << "\n";
  out << std::setprecision(17);
  for (const Trajectory& traj : traces) {
    out << traj.user << ' ' << traj.interval << ' ' << traj.points.size()
        << "\n";
    for (Point p : traj.points) out << p.x << ' ' << p.y << "\n";
  }
}

std::vector<Trajectory> load_traces(std::istream& in) {
  int line_no = 0;
  std::string line;
  expect_magic(in, kTracesMagic, line_no);
  if (!next_line(in, line, line_no)) parse_error(line_no, "missing count");
  std::size_t count = 0;
  try {
    count = std::stoul(line);
  } catch (const std::exception&) {
    parse_error(line_no, "bad trace count");
  }
  std::vector<Trajectory> traces;
  traces.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    if (!next_line(in, line, line_no))
      parse_error(line_no, "unexpected end of trace list");
    std::istringstream header(line);
    Trajectory traj;
    std::size_t points = 0;
    header >> traj.user >> traj.interval >> points;
    if (!header || traj.interval <= 0.0)
      parse_error(line_no, "malformed trace header");
    traj.points.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
      if (!next_line(in, line, line_no))
        parse_error(line_no, "unexpected end of points");
      std::istringstream row(line);
      Point p;
      row >> p.x >> p.y;
      if (!row) parse_error(line_no, "malformed point");
      traj.points.push_back(p);
    }
    traces.push_back(std::move(traj));
  }
  return traces;
}

void save_records(const std::vector<ProfileRecord>& records,
                  std::ostream& out) {
  out << kRecordsMagic << "\n";
  out << records.size() << "\n";
  out << std::setprecision(17);
  for (const ProfileRecord& rec : records) {
    out << layer_kind_name(rec.layer.kind) << ' ' << rec.layer.in_channels
        << ' ' << rec.layer.out_channels << ' ' << rec.layer.kernel << ' '
        << rec.layer.stride << ' ' << rec.layer.out_height << ' '
        << rec.layer.out_width << ' ' << rec.layer.weight_bytes << ' '
        << rec.layer.output_bytes << ' ' << rec.layer.flops << ' '
        << rec.input_bytes << ' ' << rec.stats.num_clients << ' '
        << rec.stats.kernel_util << ' ' << rec.stats.mem_util << ' '
        << rec.stats.mem_usage_mb << ' ' << rec.stats.temperature_c << ' '
        << rec.time << "\n";
  }
}

std::vector<ProfileRecord> load_records(std::istream& in) {
  int line_no = 0;
  std::string line;
  expect_magic(in, kRecordsMagic, line_no);
  if (!next_line(in, line, line_no)) parse_error(line_no, "missing count");
  std::size_t count = 0;
  try {
    count = std::stoul(line);
  } catch (const std::exception&) {
    parse_error(line_no, "bad record count");
  }
  std::vector<ProfileRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!next_line(in, line, line_no))
      parse_error(line_no, "unexpected end of records");
    std::istringstream row(line);
    ProfileRecord rec;
    std::string kind;
    row >> kind >> rec.layer.in_channels >> rec.layer.out_channels >>
        rec.layer.kernel >> rec.layer.stride >> rec.layer.out_height >>
        rec.layer.out_width >> rec.layer.weight_bytes >>
        rec.layer.output_bytes >> rec.layer.flops >> rec.input_bytes >>
        rec.stats.num_clients >> rec.stats.kernel_util >> rec.stats.mem_util >>
        rec.stats.mem_usage_mb >> rec.stats.temperature_c >> rec.time;
    if (!row) parse_error(line_no, "malformed record");
    const auto it = kind_by_name().find(kind);
    if (it == kind_by_name().end())
      parse_error(line_no, "unknown layer kind '" + kind + "'");
    rec.layer.kind = it->second;
    rec.layer.inputs = {0};  // structural inputs are not part of a record
    records.push_back(std::move(rec));
  }
  return records;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

void save_model_file(const DnnModel& model, const std::string& path) {
  auto out = open_out(path);
  save_model(model, out);
}

DnnModel load_model_file(const std::string& path) {
  auto in = open_in(path);
  return load_model(in);
}

void save_traces_file(const std::vector<Trajectory>& traces,
                      const std::string& path) {
  auto out = open_out(path);
  save_traces(traces, out);
}

std::vector<Trajectory> load_traces_file(const std::string& path) {
  auto in = open_in(path);
  return load_traces(in);
}

}  // namespace perdnn
