#include "partition/energy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

EnergyProfile odroid_energy_profile() { return EnergyProfile{}; }

namespace {

void check_energy(const EnergyProfile& energy) {
  PERDNN_CHECK(energy.compute_watts > 0 && energy.idle_watts > 0 &&
               energy.tx_watts > 0 && energy.rx_watts > 0);
}

}  // namespace

double plan_energy_joules(const PartitionContext& context,
                          const PartitionPlan& plan,
                          const EnergyProfile& energy) {
  PERDNN_CHECK(context.model != nullptr && context.client_profile != nullptr);
  check_energy(energy);
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  PERDNN_CHECK(plan.location.size() == n);
  const std::vector<Bytes>& live = context.live_bytes();

  double joules = 0.0;
  ExecLocation at = ExecLocation::kClient;
  for (std::size_t i = 1; i < n; ++i) {
    const ExecLocation next = plan.location[i];
    if (next != at) {
      // Crossing the cut after layer i-1: the live set moves.
      const double bytes = static_cast<double>(live[i - 1]);
      if (next == ExecLocation::kServer) {
        joules += (bytes / context.net.uplink_bytes_per_sec +
                   context.net.rtt) *
                  energy.tx_watts;
      } else {
        joules += (bytes / context.net.downlink_bytes_per_sec +
                   context.net.rtt) *
                  energy.rx_watts;
      }
      at = next;
    }
    joules += next == ExecLocation::kServer
                  ? context.server_time[i] * energy.idle_watts
                  : context.client_profile->client_time[i] *
                        energy.compute_watts;
  }
  if (at == ExecLocation::kServer) {
    const double bytes =
        static_cast<double>(model.layer(model.num_layers() - 1).output_bytes);
    joules += (bytes / context.net.downlink_bytes_per_sec + context.net.rtt) *
              energy.rx_watts;
  }
  return joules;
}

PartitionPlan compute_energy_best_plan(const PartitionContext& context,
                                       const EnergyProfile& energy,
                                       const std::vector<bool>* uploadable) {
  PERDNN_CHECK(context.model != nullptr && context.client_profile != nullptr);
  check_energy(energy);
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  PERDNN_CHECK(context.server_time.size() == n);
  if (uploadable) PERDNN_CHECK(uploadable->size() == n);
  const std::vector<Bytes>& live = context.live_bytes();

  const auto up_joules = [&](std::size_t cut) {
    return (static_cast<double>(live[cut]) / context.net.uplink_bytes_per_sec +
            context.net.rtt) *
           energy.tx_watts;
  };
  const auto down_joules = [&](std::size_t cut) {
    return (static_cast<double>(live[cut]) /
                context.net.downlink_bytes_per_sec +
            context.net.rtt) *
           energy.rx_watts;
  };

  // Same two-row DP as compute_best_plan, with energy weights.
  std::vector<double> at_client(n, kInfSeconds);
  std::vector<double> at_server(n, kInfSeconds);
  std::vector<std::uint8_t> client_from_server(n, 0);
  std::vector<std::uint8_t> server_from_client(n, 0);
  at_client[0] = 0.0;
  at_server[0] = up_joules(0);
  server_from_client[0] = 1;

  for (std::size_t i = 1; i < n; ++i) {
    const bool server_ok = uploadable == nullptr || (*uploadable)[i];
    const double stay = at_client[i - 1];
    const double cross = at_server[i - 1] == kInfSeconds
                             ? kInfSeconds
                             : at_server[i - 1] + down_joules(i - 1);
    const double client_exec =
        context.client_profile->client_time[i] * energy.compute_watts;
    if (cross < stay) {
      at_client[i] = cross + client_exec;
      client_from_server[i] = 1;
    } else {
      at_client[i] = stay + client_exec;
    }
    if (server_ok) {
      const double stay_server = at_server[i - 1];
      const double cross_up = at_client[i - 1] + up_joules(i - 1);
      const double server_wait = context.server_time[i] * energy.idle_watts;
      if (cross_up < stay_server) {
        at_server[i] = cross_up + server_wait;
        server_from_client[i] = 1;
      } else if (stay_server != kInfSeconds) {
        at_server[i] = stay_server + server_wait;
      }
    }
  }

  const double final_rx =
      (static_cast<double>(model.layer(model.num_layers() - 1).output_bytes) /
           context.net.downlink_bytes_per_sec +
       context.net.rtt) *
      energy.rx_watts;
  const double from_server = at_server[n - 1] == kInfSeconds
                                 ? kInfSeconds
                                 : at_server[n - 1] + final_rx;
  const bool final_on_server = from_server < at_client[n - 1];

  PartitionPlan plan;
  plan.location.assign(n, ExecLocation::kClient);
  bool on_server = final_on_server;
  for (std::size_t i = n; i-- > 1;) {
    plan.location[i] =
        on_server ? ExecLocation::kServer : ExecLocation::kClient;
    const bool switched =
        on_server ? server_from_client[i] != 0 : client_from_server[i] != 0;
    if (switched) on_server = !on_server;
  }
  plan.location[0] = ExecLocation::kClient;

  // Report the plan's *time* so callers can see the latency trade-off.
  std::vector<bool> mask(n, false);
  for (std::size_t i = 0; i < n; ++i)
    mask[i] = plan.location[i] == ExecLocation::kServer;
  plan.latency = plan_latency(context, mask);
  return plan;
}

}  // namespace perdnn
