// Client-side energy accounting and energy-optimal partitioning.
//
// The paper motivates offloading with "app performance and energy
// consumption of wearable glasses"; NeuroSurgeon optimises either latency or
// mobile energy with the same partitioning machinery. We model the client's
// energy per query from four power states — computing, transmitting,
// receiving, and idling while the server works — and reuse the shortest-path
// DP with energy edge weights to find the energy-optimal plan.
#pragma once

#include "partition/partition.hpp"

namespace perdnn {

/// Power draw of the mobile client in each state, in watts.
struct EnergyProfile {
  double compute_watts = 5.5;  ///< SoC under full DNN load
  double idle_watts = 1.2;     ///< waiting for the server's reply
  double tx_watts = 1.8;       ///< Wi-Fi transmit (radio + SoC overhead)
  double rx_watts = 1.3;       ///< Wi-Fi receive
};

/// ODROID-XU4-class board on Wi-Fi (big.LITTLE under load draws ~5-6 W).
EnergyProfile odroid_energy_profile();

/// Client energy (joules) to execute one query under the given contiguous
/// plan: client layers burn compute power, cut crossings burn radio power
/// for the live tensor set, and server segments burn idle power for their
/// duration.
double plan_energy_joules(const PartitionContext& context,
                          const PartitionPlan& plan,
                          const EnergyProfile& energy);

/// Energy-optimal plan via the same two-row shortest-path DP with energy
/// edge weights. `uploadable` as in compute_best_plan. The returned plan's
/// `latency` field still reports *time*; query the energy with
/// plan_energy_joules.
PartitionPlan compute_energy_best_plan(
    const PartitionContext& context, const EnergyProfile& energy,
    const std::vector<bool>* uploadable = nullptr);

}  // namespace perdnn
