// Efficiency-ordered incremental upload (Section 3.C.2, after E-IONN).
//
// Given a target partitioning plan, the server-side layers must be shipped
// to the server (by the client over Wi-Fi, or between edge servers over the
// backhaul for proactive migration). The order matters: sending
// high-benefit layers first lets partial deployments already offload most of
// the work. The paper enumerates every run of successive server-side layers
// ("partitions"), scores each by
//
//     efficiency = (latency reduction if this run becomes available) / bytes
//
// greedily commits the best run, and re-scores the remainder.
#pragma once

#include <vector>

#include "partition/partition.hpp"

namespace perdnn {

/// How candidate runs are enumerated in each greedy round.
enum class UploadEnumeration {
  /// Every contiguous sub-run of every remaining segment (the paper's
  /// algorithm; O(S^2) candidates per round).
  kExact,
  /// Only sub-runs anchored at a boundary of a remaining segment. Near-exact
  /// in practice (un-anchored runs pay two extra cut crossings) and O(S)
  /// candidates per round — used inside the large-scale simulator.
  kAnchored,
};

/// How candidates are scored in each greedy round.
enum class UploadScoring {
  /// Follow the global fast-path toggle (fastpath::enabled()).
  kAuto,
  /// A full forward DP (`plan_latency`) per candidate — the original
  /// O(layers) cost per candidate.
  kReference,
  /// Forward/backward DP decomposition: the forward and backward rows are
  /// refreshed once per greedy round (O(layers)) and each candidate is then
  /// approximated in O(1); near-best contenders are exactly re-scored with
  /// `plan_latency`, so the committed schedule is byte-identical to
  /// kReference (see DESIGN.md, "Single-query fast path").
  kIncremental,
};

struct UploadPlannerConfig {
  UploadEnumeration enumeration = UploadEnumeration::kExact;
  UploadScoring scoring = UploadScoring::kAuto;
};

/// The committed upload order plus byte bookkeeping.
struct UploadSchedule {
  /// Server-side layers in the order their weights are sent.
  std::vector<LayerId> order;
  /// Cumulative weight bytes after each entry of `order`.
  std::vector<Bytes> cumulative_bytes;
  /// Latency reduction attributed to each entry of `order`: the committed
  /// run's benefit apportioned across its layers by weight-byte share
  /// (equal split for zero-byte runs). Summing a prefix approximates the
  /// latency saved when that prefix is server-resident — the per-layer form
  /// of the efficiency metric the greedy planner ranks runs by, and what
  /// budgeted caches use to price an entry in saved-seconds-per-byte.
  std::vector<Seconds> latency_reduction;

  Bytes total_bytes() const {
    return cumulative_bytes.empty() ? 0 : cumulative_bytes.back();
  }

  /// Number of leading entries fully transferred after `sent_bytes`.
  std::size_t prefix_count(Bytes sent_bytes) const;

  /// Per-layer availability mask after `sent_bytes` arrived (size =
  /// model.num_layers(); layers outside the schedule are unavailable).
  std::vector<bool> uploaded_after(const DnnModel& model,
                                   Bytes sent_bytes) const;

  /// Availability mask when the first `count` entries arrived.
  std::vector<bool> uploaded_prefix(const DnnModel& model,
                                    std::size_t count) const;
};

/// Computes the greedy efficiency-ordered schedule for the server-side
/// layers of `target` under the given context.
UploadSchedule plan_upload_order(const PartitionContext& context,
                                 const PartitionPlan& target,
                                 UploadPlannerConfig config = {});

}  // namespace perdnn
