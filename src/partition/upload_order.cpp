#include "partition/upload_order.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "obs/metrics.hpp"

namespace perdnn {

std::size_t UploadSchedule::prefix_count(Bytes sent_bytes) const {
  std::size_t count = 0;
  while (count < cumulative_bytes.size() &&
         cumulative_bytes[count] <= sent_bytes)
    ++count;
  return count;
}

std::vector<bool> UploadSchedule::uploaded_after(const DnnModel& model,
                                                 Bytes sent_bytes) const {
  return uploaded_prefix(model, prefix_count(sent_bytes));
}

std::vector<bool> UploadSchedule::uploaded_prefix(const DnnModel& model,
                                                  std::size_t count) const {
  PERDNN_CHECK(count <= order.size());
  std::vector<bool> mask(static_cast<std::size_t>(model.num_layers()), false);
  for (std::size_t i = 0; i < count; ++i)
    mask[static_cast<std::size_t>(order[i])] = true;
  return mask;
}

namespace {

/// A contiguous run [first, last] of layer ids still awaiting upload.
struct Run {
  LayerId first;
  LayerId last;
};

struct Candidate {
  LayerId first = kNoLayer;
  LayerId last = kNoLayer;
  double efficiency = -kInfSeconds;
  Seconds benefit = -kInfSeconds;
  Bytes bytes = 0;

  bool better_than(const Candidate& other) const {
    if (efficiency != other.efficiency) return efficiency > other.efficiency;
    if (benefit != other.benefit) return benefit > other.benefit;
    return bytes < other.bytes;  // prefer cheaper on full ties
  }
};

Bytes run_bytes(const DnnModel& model, LayerId first, LayerId last) {
  Bytes total = 0;
  for (LayerId id = first; id <= last; ++id)
    total += model.layer(id).weight_bytes;
  return total;
}

/// Appends the committed run [best.first, best.last] to the schedule,
/// splitting the run's latency benefit across its layers by weight-byte
/// share (equal split when the run carries no weight bytes). Shared by the
/// reference and incremental planners so their schedules stay identical.
void commit_run(UploadSchedule& schedule, const DnnModel& model,
                const Candidate& best, Bytes& sent,
                std::vector<bool>& uploaded) {
  const int run_layers = best.last - best.first + 1;
  for (LayerId id = best.first; id <= best.last; ++id) {
    const Bytes weight = model.layer(id).weight_bytes;
    schedule.order.push_back(id);
    sent += weight;
    schedule.cumulative_bytes.push_back(sent);
    schedule.latency_reduction.push_back(
        best.bytes > 0 ? best.benefit * (static_cast<double>(weight) /
                                         static_cast<double>(best.bytes))
                       : best.benefit / static_cast<double>(run_layers));
    uploaded[static_cast<std::size_t>(id)] = true;
  }
}

/// Maximal runs of consecutive server-side layers of the target plan.
std::vector<Run> collect_runs(const PartitionPlan& target) {
  std::vector<Run> runs;
  for (std::size_t i = 0; i < target.location.size(); ++i) {
    if (target.location[i] != ExecLocation::kServer) continue;
    const auto id = static_cast<LayerId>(i);
    if (!runs.empty() && runs.back().last == id - 1) {
      runs.back().last = id;
    } else {
      runs.push_back({id, id});
    }
  }
  return runs;
}

UploadSchedule plan_upload_order_reference(const PartitionContext& context,
                                           const PartitionPlan& target,
                                           const UploadPlannerConfig& config) {
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());

  std::vector<Run> runs = collect_runs(target);
  UploadSchedule schedule;
  if (runs.empty()) return schedule;

  std::vector<bool> uploaded(n, false);
  Seconds current_latency = plan_latency(context, uploaded);
  Bytes sent = 0;

  auto score = [&](LayerId first, LayerId last) {
    Candidate c;
    c.first = first;
    c.last = last;
    c.bytes = run_bytes(model, first, last);
    std::vector<bool> tentative = uploaded;
    for (LayerId id = first; id <= last; ++id)
      tentative[static_cast<std::size_t>(id)] = true;
    c.benefit = current_latency - plan_latency(context, tentative);
    // Zero-byte runs (activation-only stretches) are free to send; score by
    // raw benefit against a one-byte floor.
    c.efficiency = c.benefit / static_cast<double>(std::max<Bytes>(c.bytes, 1));
    return c;
  };

  while (!runs.empty()) {
    Candidate best;
    for (const Run& run : runs) {
      if (config.enumeration == UploadEnumeration::kExact) {
        for (LayerId a = run.first; a <= run.last; ++a)
          for (LayerId b = a; b <= run.last; ++b) {
            const Candidate c = score(a, b);
            if (c.better_than(best)) best = c;
          }
      } else {
        // Anchored: prefixes and suffixes of the run.
        for (LayerId b = run.first; b <= run.last; ++b) {
          const Candidate c = score(run.first, b);
          if (c.better_than(best)) best = c;
        }
        for (LayerId a = run.first + 1; a <= run.last; ++a) {
          const Candidate c = score(a, run.last);
          if (c.better_than(best)) best = c;
        }
      }
    }
    PERDNN_CHECK(best.first != kNoLayer);

    // Commit the winning run to the schedule.
    commit_run(schedule, model, best, sent, uploaded);
    current_latency = plan_latency(context, uploaded);

    // Split/remove the runs the pick touched.
    std::vector<Run> next;
    next.reserve(runs.size() + 1);
    for (const Run& run : runs) {
      if (best.last < run.first || best.first > run.last) {
        next.push_back(run);
        continue;
      }
      if (run.first < best.first) next.push_back({run.first, best.first - 1});
      if (best.last < run.last) next.push_back({best.last + 1, run.last});
    }
    runs = std::move(next);
  }
  PERDNN_CHECK(schedule.order.size() ==
               static_cast<std::size_t>(target.num_server_layers()));
  return schedule;
}

/// One candidate as scored by the O(1) incremental sweep of pass 1, in the
/// exact enumeration order of the reference implementation.
struct ApproxCandidate {
  LayerId first;
  LayerId last;
  Bytes bytes;
  Seconds approx_benefit;
};

// Incremental scorer. Per greedy round it refreshes, in O(layers):
//   * the forward DP rows Fc/Fs under the committed mask (plan_forward_dp);
//   * backward rows Bc/Bs — cost-to-go from "layer i done at client/server"
//     to the finished result back at the client, under the committed mask.
// A candidate [a, b] only changes availability inside [a, b], so its latency
// is   min over exit state of  (forward-through-[a,b] from Fc[a-1]/Fs[a-1])
//                              + Bc[b]/Bs[b],
// which an in-candidate running DP evaluates in O(1) per extension of b
// (prefix sweeps) or via per-run suffix arrays (suffix candidates). The
// joined value equals the reference plan_latency in real arithmetic but not
// bit-for-bit (different association of the same sums), and efficiency ties
// are common — so pass 1 only *prunes*: every candidate whose approximate
// efficiency could still reach the approximate best (margin `m`, orders of
// magnitude above the achievable FP divergence) is re-scored in pass 2 with
// the reference's own plan_latency call, in the reference's enumeration
// order, under the reference's comparison. The committed schedule is
// therefore byte-identical to plan_upload_order_reference.
UploadSchedule plan_upload_order_incremental(
    const PartitionContext& context, const PartitionPlan& target,
    const UploadPlannerConfig& config) {
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());

  std::vector<Run> runs = collect_runs(target);
  UploadSchedule schedule;
  if (runs.empty()) return schedule;

  const std::vector<Bytes>& live = context.live_bytes();
  const auto& ct = context.client_profile->client_time;
  const auto& st = context.server_time;
  const auto up = [&](std::size_t cut) {
    return static_cast<double>(live[cut]) / context.net.uplink_bytes_per_sec +
           context.net.rtt;
  };
  const auto down = [&](std::size_t cut) {
    return static_cast<double>(live[cut]) /
               context.net.downlink_bytes_per_sec +
           context.net.rtt;
  };
  const Bytes result_bytes = model.layer(model.num_layers() - 1).output_bytes;
  const Seconds result_hop =
      static_cast<double>(result_bytes) / context.net.downlink_bytes_per_sec +
      context.net.rtt;

  std::vector<bool> uploaded(n, false);
  std::vector<Seconds> bc(n), bs(n);
  std::vector<Seconds> gc, gs;
  std::vector<Bytes> suffix_bytes;
  std::vector<ApproxCandidate> approx;
  Bytes sent = 0;

  while (!runs.empty()) {
    const ForwardDp fwd = plan_forward_dp(context, uploaded);
    const Seconds current_latency = fwd.latency;
    const auto& fc = fwd.at_client;
    const auto& fs = fwd.at_server;

    // Exact candidate score, bit-identical to the reference's
    //   current_latency - plan_latency(context, tentative mask)
    // but windowed: states before `first` are unchanged by the tentative
    // availability, so the reference recurrence (same arithmetic as run_dp,
    // same tie handling) is seeded from this round's forward rows and run
    // from `first` on. Once past `last` the mask matches `uploaded` again,
    // so the DP is Markov: the moment the states rejoin the forward rows the
    // tail — and hence the final latency — is bit-identical to the
    // no-candidate run, and the benefit is exactly 0.0. That early exit
    // keeps degenerate all-tied rounds (every remaining candidate
    // zero-benefit) cheap instead of reference-cost.
    const auto exact_score = [&](LayerId first, LayerId last) {
      Candidate c;
      c.first = first;
      c.last = last;
      c.bytes = run_bytes(model, first, last);
      const auto fi = static_cast<std::size_t>(first);
      const auto li = static_cast<std::size_t>(last);
      Seconds dc = fc[fi - 1];
      Seconds ds = fs[fi - 1];
      bool converged = false;
      for (std::size_t i = fi; i < n; ++i) {
        const bool server_ok = i <= li || uploaded[i];
        const Seconds stay_client = dc;
        const Seconds cross_down =
            ds == kInfSeconds ? kInfSeconds : ds + down(i - 1);
        const Seconds ndc =
            (cross_down < stay_client ? cross_down : stay_client) + ct[i];
        Seconds nds = kInfSeconds;
        if (server_ok) {
          const Seconds stay_server = ds;
          const Seconds cross_up = dc + up(i - 1);
          if (cross_up < stay_server) {
            nds = cross_up + st[i];
          } else if (stay_server != kInfSeconds) {
            nds = stay_server + st[i];
          }
        }
        dc = ndc;
        ds = nds;
        if (i > li && dc == fc[i] && ds == fs[i]) {
          converged = true;
          break;
        }
      }
      if (converged) {
        c.benefit = 0.0;
      } else {
        const Seconds from_server =
            ds == kInfSeconds
                ? kInfSeconds
                : ds + static_cast<double>(result_bytes) /
                           context.net.downlink_bytes_per_sec +
                      context.net.rtt;
        const Seconds lat = from_server < dc ? from_server : dc;
        c.benefit = current_latency - lat;
      }
      c.efficiency =
          c.benefit / static_cast<double>(std::max<Bytes>(c.bytes, 1));
      return c;
    };

    bc[n - 1] = 0.0;
    bs[n - 1] = result_hop;
    for (std::size_t i = n - 1; i-- > 0;) {
      const bool server_ok = uploaded[i + 1];
      const Seconds via_client = ct[i + 1] + bc[i + 1];
      bc[i] = server_ok
                  ? std::min(via_client, up(i) + st[i + 1] + bs[i + 1])
                  : via_client;
      const Seconds via_down = down(i) + ct[i + 1] + bc[i + 1];
      bs[i] = server_ok ? std::min(st[i + 1] + bs[i + 1], via_down) : via_down;
    }

    // Pass 1: approximate every candidate, in the reference enumeration
    // order. Runs never contain layer 0 (the input pseudo-layer is always
    // client-side), so the a-1 / i-1 indexing below stays in range.
    approx.clear();
    for (const Run& run : runs) {
      const auto first_i = static_cast<std::size_t>(run.first);
      const auto last_i = static_cast<std::size_t>(run.last);
      const auto sweep_from = [&](LayerId a) {
        const auto ai = static_cast<std::size_t>(a);
        Seconds dc = fc[ai - 1];
        Seconds ds = fs[ai - 1];
        Bytes bytes = 0;
        for (LayerId b = a; b <= run.last; ++b) {
          const auto bi = static_cast<std::size_t>(b);
          bytes += model.layer(b).weight_bytes;
          const Seconds from_server =
              ds == kInfSeconds ? kInfSeconds : ds + down(bi - 1);
          const Seconds ndc = std::min(dc, from_server) + ct[bi];
          const Seconds nds = std::min(ds, dc + up(bi - 1)) + st[bi];
          dc = ndc;
          ds = nds;
          const Seconds lat = std::min(dc + bc[bi], ds + bs[bi]);
          approx.push_back({a, b, bytes, current_latency - lat});
        }
      };
      if (config.enumeration == UploadEnumeration::kExact) {
        for (LayerId a = run.first; a <= run.last; ++a) sweep_from(a);
      } else {
        sweep_from(run.first);  // prefixes
        // Suffix candidates [a, run.last] share their tail, so one backward
        // sweep builds cost-to-go arrays over the run (gc/gs: entering layer
        // first_i + k with data at client/server, all of [k, len) available)
        // and each anchor joins against them in O(1).
        const std::size_t len = last_i - first_i + 1;
        gc.assign(len + 1, 0.0);
        gs.assign(len + 1, 0.0);
        gc[len] = bc[last_i];
        gs[len] = bs[last_i];
        suffix_bytes.assign(len + 1, 0);
        for (std::size_t k = len; k-- > 0;) {
          const std::size_t i = first_i + k;
          gc[k] = std::min(ct[i] + gc[k + 1], up(i - 1) + st[i] + gs[k + 1]);
          gs[k] = std::min(st[i] + gs[k + 1], down(i - 1) + ct[i] + gc[k + 1]);
          suffix_bytes[k] =
              suffix_bytes[k + 1] + model.layer(static_cast<LayerId>(i)).weight_bytes;
        }
        for (LayerId a = run.first + 1; a <= run.last; ++a) {
          const auto ai = static_cast<std::size_t>(a);
          const std::size_t k = ai - first_i;
          const Seconds from_server =
              fs[ai - 1] == kInfSeconds ? kInfSeconds : fs[ai - 1] + gs[k];
          const Seconds lat = std::min(fc[ai - 1] + gc[k], from_server);
          approx.push_back(
              {a, run.last, suffix_bytes[k], current_latency - lat});
        }
      }
    }

    // The incremental join differs from the reference forward DP only by
    // floating-point association of the same terms, so the true benefit of a
    // candidate lies within `m` of its approximation — with `m` set orders
    // of magnitude above any achievable rounding divergence (~layers * eps *
    // latency) while staying far below real efficiency gaps.
    const double m = 1e-9 * (1.0 + std::abs(current_latency));
    double best_lo = -kInfSeconds;
    for (const ApproxCandidate& c : approx) {
      const double denom = static_cast<double>(std::max<Bytes>(c.bytes, 1));
      best_lo = std::max(best_lo, (c.approx_benefit - m) / denom);
    }

    // Pass 2: exact re-score of contenders only, reference order + compare.
    Candidate best;
    std::size_t rescored = 0;
    for (const ApproxCandidate& c : approx) {
      const double denom = static_cast<double>(std::max<Bytes>(c.bytes, 1));
      if ((c.approx_benefit + m) / denom < best_lo) continue;
      ++rescored;
      const Candidate exact = exact_score(c.first, c.last);
      if (exact.better_than(best)) best = exact;
    }
    obs::count("upload_order.candidates", static_cast<double>(approx.size()));
    obs::count("upload_order.rescored", static_cast<double>(rescored));
    PERDNN_CHECK(best.first != kNoLayer);

    commit_run(schedule, model, best, sent, uploaded);

    std::vector<Run> next;
    next.reserve(runs.size() + 1);
    for (const Run& run : runs) {
      if (best.last < run.first || best.first > run.last) {
        next.push_back(run);
        continue;
      }
      if (run.first < best.first) next.push_back({run.first, best.first - 1});
      if (best.last < run.last) next.push_back({best.last + 1, run.last});
    }
    runs = std::move(next);
  }
  PERDNN_CHECK(schedule.order.size() ==
               static_cast<std::size_t>(target.num_server_layers()));
  return schedule;
}

}  // namespace

UploadSchedule plan_upload_order(const PartitionContext& context,
                                 const PartitionPlan& target,
                                 UploadPlannerConfig config) {
  PERDNN_CHECK(target.location.size() ==
               static_cast<std::size_t>(context.model->num_layers()));
  UploadScoring scoring = config.scoring;
  if (scoring == UploadScoring::kAuto)
    scoring = fastpath::enabled() ? UploadScoring::kIncremental
                                  : UploadScoring::kReference;
  if (scoring == UploadScoring::kIncremental)
    return plan_upload_order_incremental(context, target, config);
  return plan_upload_order_reference(context, target, config);
}

}  // namespace perdnn
