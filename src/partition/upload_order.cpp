#include "partition/upload_order.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

std::size_t UploadSchedule::prefix_count(Bytes sent_bytes) const {
  std::size_t count = 0;
  while (count < cumulative_bytes.size() &&
         cumulative_bytes[count] <= sent_bytes)
    ++count;
  return count;
}

std::vector<bool> UploadSchedule::uploaded_after(const DnnModel& model,
                                                 Bytes sent_bytes) const {
  return uploaded_prefix(model, prefix_count(sent_bytes));
}

std::vector<bool> UploadSchedule::uploaded_prefix(const DnnModel& model,
                                                  std::size_t count) const {
  PERDNN_CHECK(count <= order.size());
  std::vector<bool> mask(static_cast<std::size_t>(model.num_layers()), false);
  for (std::size_t i = 0; i < count; ++i)
    mask[static_cast<std::size_t>(order[i])] = true;
  return mask;
}

namespace {

/// A contiguous run [first, last] of layer ids still awaiting upload.
struct Run {
  LayerId first;
  LayerId last;
};

struct Candidate {
  LayerId first = kNoLayer;
  LayerId last = kNoLayer;
  double efficiency = -kInfSeconds;
  Seconds benefit = -kInfSeconds;
  Bytes bytes = 0;

  bool better_than(const Candidate& other) const {
    if (efficiency != other.efficiency) return efficiency > other.efficiency;
    if (benefit != other.benefit) return benefit > other.benefit;
    return bytes < other.bytes;  // prefer cheaper on full ties
  }
};

Bytes run_bytes(const DnnModel& model, LayerId first, LayerId last) {
  Bytes total = 0;
  for (LayerId id = first; id <= last; ++id)
    total += model.layer(id).weight_bytes;
  return total;
}

}  // namespace

UploadSchedule plan_upload_order(const PartitionContext& context,
                                 const PartitionPlan& target,
                                 UploadPlannerConfig config) {
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  PERDNN_CHECK(target.location.size() == n);

  // Maximal runs of consecutive server-side layers.
  std::vector<Run> runs;
  for (std::size_t i = 0; i < n; ++i) {
    if (target.location[i] != ExecLocation::kServer) continue;
    const auto id = static_cast<LayerId>(i);
    if (!runs.empty() && runs.back().last == id - 1) {
      runs.back().last = id;
    } else {
      runs.push_back({id, id});
    }
  }

  UploadSchedule schedule;
  if (runs.empty()) return schedule;

  std::vector<bool> uploaded(n, false);
  Seconds current_latency = plan_latency(context, uploaded);
  Bytes sent = 0;

  auto score = [&](LayerId first, LayerId last) {
    Candidate c;
    c.first = first;
    c.last = last;
    c.bytes = run_bytes(model, first, last);
    std::vector<bool> tentative = uploaded;
    for (LayerId id = first; id <= last; ++id)
      tentative[static_cast<std::size_t>(id)] = true;
    c.benefit = current_latency - plan_latency(context, tentative);
    // Zero-byte runs (activation-only stretches) are free to send; score by
    // raw benefit against a one-byte floor.
    c.efficiency = c.benefit / static_cast<double>(std::max<Bytes>(c.bytes, 1));
    return c;
  };

  while (!runs.empty()) {
    Candidate best;
    for (const Run& run : runs) {
      if (config.enumeration == UploadEnumeration::kExact) {
        for (LayerId a = run.first; a <= run.last; ++a)
          for (LayerId b = a; b <= run.last; ++b) {
            const Candidate c = score(a, b);
            if (c.better_than(best)) best = c;
          }
      } else {
        // Anchored: prefixes and suffixes of the run.
        for (LayerId b = run.first; b <= run.last; ++b) {
          const Candidate c = score(run.first, b);
          if (c.better_than(best)) best = c;
        }
        for (LayerId a = run.first + 1; a <= run.last; ++a) {
          const Candidate c = score(a, run.last);
          if (c.better_than(best)) best = c;
        }
      }
    }
    PERDNN_CHECK(best.first != kNoLayer);

    // Commit the winning run to the schedule.
    for (LayerId id = best.first; id <= best.last; ++id) {
      schedule.order.push_back(id);
      sent += model.layer(id).weight_bytes;
      schedule.cumulative_bytes.push_back(sent);
      uploaded[static_cast<std::size_t>(id)] = true;
    }
    current_latency = plan_latency(context, uploaded);

    // Split/remove the runs the pick touched.
    std::vector<Run> next;
    next.reserve(runs.size() + 1);
    for (const Run& run : runs) {
      if (best.last < run.first || best.first > run.last) {
        next.push_back(run);
        continue;
      }
      if (run.first < best.first) next.push_back({run.first, best.first - 1});
      if (best.last < run.last) next.push_back({best.last + 1, run.last});
    }
    runs = std::move(next);
  }
  PERDNN_CHECK(schedule.order.size() ==
               static_cast<std::size_t>(target.num_server_layers()));
  return schedule;
}

}  // namespace perdnn
