// Min-cut DAG partitioner, after Hu et al. (INFOCOM'19, "DNN surgery").
//
// The paper cites this as the alternative partitioning family for DAG-shaped
// models; we implement it as an extension and compare it with the IONN
// shortest-path partitioner in the ablation bench. The objective is the
// *sum model*: total latency = Σ execution times at the assigned locations +
// Σ transfer times of tensors whose producer and consumer live on different
// sides. Minimising that objective is exactly a minimum s-t cut:
//
//   source  = server side; sink = client side
//   s -> i   capacity client_time(i)   (cut iff i executes on the client)
//   i -> t   capacity server_time(i)   (cut iff i executes on the server)
//   i <-> j  capacity transfer_time(output of i) for every data edge (i, j)
//
// The input layer is pinned to the client with an infinite-capacity edge.
// Unlike the shortest-path partitioner, the resulting assignment need not be
// contiguous in topological order.
#pragma once

#include "partition/partition.hpp"

namespace perdnn {

/// Optimal assignment under the sum model (Dinic max-flow on the graph
/// above). `plan.latency` is the sum-model latency of the assignment.
PartitionPlan compute_mincut_plan(const PartitionContext& context);

/// Sum-model latency of an arbitrary assignment (works for non-contiguous
/// plans, unlike the shortest-path DP).
Seconds sum_model_latency(const PartitionContext& context,
                          const PartitionPlan& plan);

}  // namespace perdnn
