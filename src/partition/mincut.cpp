#include "partition/mincut.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace perdnn {

namespace {

/// Dinic max-flow on a small dense-ish graph of doubles.
class Dinic {
 public:
  explicit Dinic(int num_nodes) : adj_(static_cast<std::size_t>(num_nodes)) {}

  void add_edge(int from, int to, double capacity) {
    PERDNN_CHECK(capacity >= 0.0);
    adj_[static_cast<std::size_t>(from)].push_back(
        {to, static_cast<int>(adj_[static_cast<std::size_t>(to)].size()),
         capacity});
    adj_[static_cast<std::size_t>(to)].push_back(
        {from,
         static_cast<int>(adj_[static_cast<std::size_t>(from)].size()) - 1,
         0.0});
  }

  double max_flow(int source, int sink) {
    double flow = 0.0;
    while (bfs(source, sink)) {
      iter_.assign(adj_.size(), 0);
      while (true) {
        const double pushed = dfs(source, sink, kInfSeconds);
        if (pushed <= kEps) break;
        flow += pushed;
      }
    }
    return flow;
  }

  /// After max_flow: nodes reachable from source in the residual graph.
  std::vector<bool> min_cut_source_side(int source) const {
    std::vector<bool> visited(adj_.size(), false);
    std::queue<int> queue;
    queue.push(source);
    visited[static_cast<std::size_t>(source)] = true;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
        if (e.capacity > kEps && !visited[static_cast<std::size_t>(e.to)]) {
          visited[static_cast<std::size_t>(e.to)] = true;
          queue.push(e.to);
        }
      }
    }
    return visited;
  }

 private:
  static constexpr double kEps = 1e-12;

  struct Edge {
    int to;
    int reverse_index;
    double capacity;
  };

  bool bfs(int source, int sink) {
    level_.assign(adj_.size(), -1);
    std::queue<int> queue;
    queue.push(source);
    level_[static_cast<std::size_t>(source)] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
        if (e.capacity > kEps && level_[static_cast<std::size_t>(e.to)] < 0) {
          level_[static_cast<std::size_t>(e.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          queue.push(e.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(sink)] >= 0;
  }

  double dfs(int u, int sink, double limit) {
    if (u == sink) return limit;
    for (std::size_t& i = iter_[static_cast<std::size_t>(u)];
         i < adj_[static_cast<std::size_t>(u)].size(); ++i) {
      Edge& e = adj_[static_cast<std::size_t>(u)][i];
      if (e.capacity <= kEps ||
          level_[static_cast<std::size_t>(e.to)] !=
              level_[static_cast<std::size_t>(u)] + 1)
        continue;
      const double pushed = dfs(e.to, sink, std::min(limit, e.capacity));
      if (pushed > kEps) {
        e.capacity -= pushed;
        adj_[static_cast<std::size_t>(e.to)]
            [static_cast<std::size_t>(e.reverse_index)]
                .capacity += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

constexpr double kPinCapacity = 1e12;  // effectively infinite

}  // namespace

PartitionPlan compute_mincut_plan(const PartitionContext& context) {
  PERDNN_CHECK(context.model != nullptr && context.client_profile != nullptr);
  const DnnModel& model = *context.model;
  const int n = model.num_layers();
  PERDNN_CHECK(context.server_time.size() == static_cast<std::size_t>(n));

  const int source = n;      // server side
  const int sink = n + 1;    // client side
  Dinic dinic(n + 2);
  for (LayerId i = 0; i < n; ++i) {
    dinic.add_edge(source, i,
                   context.client_profile->client_time
                       [static_cast<std::size_t>(i)]);
    dinic.add_edge(i, sink, context.server_time[static_cast<std::size_t>(i)]);
    const double transfer =
        static_cast<double>(model.layer(i).output_bytes) /
            context.net.uplink_bytes_per_sec +
        context.net.rtt;
    for (LayerId succ : model.successors(i)) {
      dinic.add_edge(i, succ, transfer);
      dinic.add_edge(succ, i, transfer);
    }
  }
  // Pin the input layer to the client.
  dinic.add_edge(0, sink, kPinCapacity);

  dinic.max_flow(source, sink);
  const std::vector<bool> server_side = dinic.min_cut_source_side(source);

  PartitionPlan plan;
  plan.location.assign(static_cast<std::size_t>(n), ExecLocation::kClient);
  for (LayerId i = 0; i < n; ++i)
    if (server_side[static_cast<std::size_t>(i)])
      plan.location[static_cast<std::size_t>(i)] = ExecLocation::kServer;
  plan.location[0] = ExecLocation::kClient;
  plan.latency = sum_model_latency(context, plan);
  return plan;
}

Seconds sum_model_latency(const PartitionContext& context,
                          const PartitionPlan& plan) {
  PERDNN_CHECK(context.model != nullptr && context.client_profile != nullptr);
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  PERDNN_CHECK(plan.location.size() == n);

  Seconds total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += plan.location[i] == ExecLocation::kServer
                 ? context.server_time[i]
                 : context.client_profile->client_time[i];
  }
  for (LayerId i = 0; i < static_cast<LayerId>(n); ++i) {
    const ExecLocation from = plan.location[static_cast<std::size_t>(i)];
    const Bytes bytes = model.layer(i).output_bytes;
    for (LayerId succ : model.successors(i)) {
      const ExecLocation to = plan.location[static_cast<std::size_t>(succ)];
      if (from == to) continue;
      const double rate = from == ExecLocation::kClient
                              ? context.net.uplink_bytes_per_sec
                              : context.net.downlink_bytes_per_sec;
      total += static_cast<double>(bytes) / rate + context.net.rtt;
    }
  }
  // The final output must reach the client.
  if (plan.location[n - 1] == ExecLocation::kServer) {
    total += static_cast<double>(model.layer(static_cast<LayerId>(n) - 1)
                                     .output_bytes) /
                 context.net.downlink_bytes_per_sec +
             context.net.rtt;
  }
  return total;
}

}  // namespace perdnn
