#include "partition/partition.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perdnn {

std::vector<LayerId> PartitionPlan::server_layers() const {
  std::vector<LayerId> out;
  out.reserve(location.size());
  for (std::size_t i = 0; i < location.size(); ++i)
    if (location[i] == ExecLocation::kServer)
      out.push_back(static_cast<LayerId>(i));
  return out;
}

Bytes PartitionPlan::server_bytes(const DnnModel& model) const {
  PERDNN_CHECK(static_cast<int>(location.size()) == model.num_layers());
  Bytes total = 0;
  for (std::size_t i = 0; i < location.size(); ++i)
    if (location[i] == ExecLocation::kServer)
      total += model.layer(static_cast<LayerId>(i)).weight_bytes;
  return total;
}

int PartitionPlan::num_server_layers() const {
  int n = 0;
  for (ExecLocation loc : location)
    if (loc == ExecLocation::kServer) ++n;
  return n;
}

std::vector<Bytes> live_cut_bytes(const DnnModel& model) {
  const int n = model.num_layers();
  // difference array: tensor of layer j is live on cuts [j, last_consumer-1].
  std::vector<Bytes> diff(static_cast<std::size_t>(n) + 1, 0);
  for (LayerId j = 0; j < n; ++j) {
    LayerId last = j;
    for (LayerId succ : model.successors(j)) last = std::max(last, succ);
    if (last == j) continue;  // terminal layer: output returns via the final hop
    diff[static_cast<std::size_t>(j)] += model.layer(j).output_bytes;
    diff[static_cast<std::size_t>(last)] -= model.layer(j).output_bytes;
  }
  std::vector<Bytes> live(static_cast<std::size_t>(n), 0);
  Bytes acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += diff[static_cast<std::size_t>(i)];
    live[static_cast<std::size_t>(i)] = acc;
  }
  return live;
}

const std::vector<Bytes>& PartitionContext::live_bytes() const {
  PERDNN_CHECK(model != nullptr);
  if (live_bytes_for != model) {
    live_bytes_cache = live_cut_bytes(*model);
    live_bytes_for = model;
  }
  return live_bytes_cache;
}

namespace {

void check_context(const PartitionContext& context) {
  PERDNN_CHECK(context.model != nullptr);
  PERDNN_CHECK(context.client_profile != nullptr);
  const auto n = static_cast<std::size_t>(context.model->num_layers());
  PERDNN_CHECK(context.client_profile->client_time.size() == n);
  PERDNN_CHECK(context.server_time.size() == n);
  PERDNN_CHECK(context.net.uplink_bytes_per_sec > 0);
  PERDNN_CHECK(context.net.downlink_bytes_per_sec > 0);
}

struct DpResult {
  std::vector<Seconds> at_client;  // best time with layer i done, data at client
  std::vector<Seconds> at_server;
  // Backtracking: did state (i, row) come from the other row at cut i-1?
  std::vector<std::uint8_t> client_from_server;
  std::vector<std::uint8_t> server_from_client;
  Seconds final_latency = kInfSeconds;
  bool final_from_server = false;
};

DpResult run_dp(const PartitionContext& context,
                const std::vector<bool>* uploadable, bool backtrack) {
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  const std::vector<Bytes>& live = context.live_bytes();
  const auto& ct = context.client_profile->client_time;
  const auto& st = context.server_time;
  const auto up = [&](std::size_t cut) {
    return static_cast<double>(live[cut]) / context.net.uplink_bytes_per_sec +
           context.net.rtt;
  };
  const auto down = [&](std::size_t cut) {
    return static_cast<double>(live[cut]) /
               context.net.downlink_bytes_per_sec +
           context.net.rtt;
  };

  DpResult dp;
  dp.at_client.assign(n, kInfSeconds);
  dp.at_server.assign(n, kInfSeconds);
  if (backtrack) {
    dp.client_from_server.assign(n, 0);
    dp.server_from_client.assign(n, 0);
  }

  // Layer 0 is the input pseudo-layer: produced at the client for free.
  dp.at_client[0] = 0.0;
  dp.at_server[0] = up(0);
  if (backtrack) dp.server_from_client[0] = 1;

  for (std::size_t i = 1; i < n; ++i) {
    const bool server_ok =
        uploadable == nullptr || (*uploadable)[i];
    // Reach "layer i done at client".
    const Seconds stay_client = dp.at_client[i - 1];
    const Seconds cross_down = dp.at_server[i - 1] == kInfSeconds
                                   ? kInfSeconds
                                   : dp.at_server[i - 1] + down(i - 1);
    if (cross_down < stay_client) {
      dp.at_client[i] = cross_down + ct[i];
      if (backtrack) dp.client_from_server[i] = 1;
    } else {
      dp.at_client[i] = stay_client + ct[i];
    }
    // Reach "layer i done at server".
    if (server_ok) {
      const Seconds stay_server = dp.at_server[i - 1];
      const Seconds cross_up = dp.at_client[i - 1] + up(i - 1);
      if (cross_up < stay_server) {
        dp.at_server[i] = cross_up + st[i];
        if (backtrack) dp.server_from_client[i] = 1;
      } else if (stay_server != kInfSeconds) {
        dp.at_server[i] = stay_server + st[i];
      }
    }
  }

  // The result tensor must end at the client.
  const Bytes result_bytes = model.layer(model.num_layers() - 1).output_bytes;
  const Seconds from_server =
      dp.at_server[n - 1] == kInfSeconds
          ? kInfSeconds
          : dp.at_server[n - 1] +
                static_cast<double>(result_bytes) /
                    context.net.downlink_bytes_per_sec +
                context.net.rtt;
  if (from_server < dp.at_client[n - 1]) {
    dp.final_latency = from_server;
    dp.final_from_server = true;
  } else {
    dp.final_latency = dp.at_client[n - 1];
  }
  PERDNN_CHECK(dp.final_latency != kInfSeconds);
  return dp;
}

}  // namespace

PartitionPlan compute_best_plan(const PartitionContext& context,
                                const std::vector<bool>* uploadable) {
  PERDNN_SPAN("partition.shortest_path");
  obs::count("partition.plans");
  check_context(context);
  const DnnModel& model = *context.model;
  const auto n = static_cast<std::size_t>(model.num_layers());
  if (uploadable) PERDNN_CHECK(uploadable->size() == n);

  const DpResult dp = run_dp(context, uploadable, /*backtrack=*/true);

  PartitionPlan plan;
  plan.latency = dp.final_latency;
  plan.location.assign(n, ExecLocation::kClient);
  bool on_server = dp.final_from_server;
  for (std::size_t i = n; i-- > 1;) {
    plan.location[i] = on_server ? ExecLocation::kServer : ExecLocation::kClient;
    const bool switched = on_server ? dp.server_from_client[i] != 0
                                    : dp.client_from_server[i] != 0;
    if (switched) on_server = !on_server;
  }
  plan.location[0] = ExecLocation::kClient;  // input originates at the client
  return plan;
}

Seconds plan_latency(const PartitionContext& context,
                     const std::vector<bool>& uploadable) {
  obs::count("partition.plan_latency_calls");
  check_context(context);
  PERDNN_CHECK(uploadable.size() ==
               static_cast<std::size_t>(context.model->num_layers()));
  return run_dp(context, &uploadable, /*backtrack=*/false).final_latency;
}

ForwardDp plan_forward_dp(const PartitionContext& context,
                          const std::vector<bool>& uploadable) {
  check_context(context);
  PERDNN_CHECK(uploadable.size() ==
               static_cast<std::size_t>(context.model->num_layers()));
  DpResult dp = run_dp(context, &uploadable, /*backtrack=*/false);
  ForwardDp out;
  out.at_client = std::move(dp.at_client);
  out.at_server = std::move(dp.at_server);
  out.latency = dp.final_latency;
  return out;
}

Seconds local_only_latency(const PartitionContext& context) {
  check_context(context);
  Seconds total = 0;
  for (Seconds t : context.client_profile->client_time) total += t;
  return total;
}

}  // namespace perdnn
