// Graph-based DNN partitioning (Section 3.C.2, after IONN).
//
// The model's layers are processed in topological order; a *cut* after
// position i separates client-side from server-side execution. The execution
// plan is the shortest path through a two-row DAG:
//
//    client_0 -> client_1 -> ... -> client_N
//       |  ^        |  ^               |  ^
//       v  |        v  |               v  |     (uplink / downlink edges,
//    server_0 -> server_1 -> ... -> server_N     weighted by the *live*
//                                                tensor set at that cut)
//
// Horizontal edges carry layer execution times (client profile / server
// estimator); vertical edges carry the transfer time of every tensor that is
// still live at that cut — which generalises IONN's chain formulation to
// DAG-shaped models (Inception branches, ResNet shortcuts): whatever tensors
// cross the cut must cross the network.
//
// A layer may execute on the server only if its weights are present there
// (`uploadable`), which is how partial deployments during incremental
// upload are planned with the same algorithm.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "device/device_profile.hpp"
#include "nn/model.hpp"

namespace perdnn {

enum class ExecLocation : std::uint8_t { kClient, kServer };

/// Runtime network state between the client and one edge server.
struct NetworkCondition {
  double uplink_bytes_per_sec = mbps_to_bytes_per_sec(35.0);
  double downlink_bytes_per_sec = mbps_to_bytes_per_sec(50.0);
  Seconds rtt = 5e-3;  ///< added once per direction switch
};

/// Everything the partitioner needs about one (client, server, model) triple.
struct PartitionContext {
  const DnnModel* model = nullptr;
  const DnnProfile* client_profile = nullptr;
  /// Estimated server execution time per layer (from the server's estimator
  /// under its current GPU statistics).
  std::vector<Seconds> server_time;
  NetworkCondition net;

  /// `live_cut_bytes(*model)`, computed once per context and reused by every
  /// DP run on it (`plan_latency` is called in tight per-query loops, and the
  /// live set only depends on the model graph). The cache is keyed on the
  /// model pointer: copying a warmed context keeps it warm, swapping `model`
  /// invalidates it. Filling is lazy and not synchronised — when sharing one
  /// context across threads, warm it (call `live_bytes()`) first.
  const std::vector<Bytes>& live_bytes() const;

  /// Cache backing for live_bytes(); treat as private.
  mutable std::vector<Bytes> live_bytes_cache;
  mutable const DnnModel* live_bytes_for = nullptr;
};

struct PartitionPlan {
  /// Execution location per layer (input layer is always kClient).
  std::vector<ExecLocation> location;
  /// Predicted per-query latency of this plan.
  Seconds latency = 0.0;

  /// Ids of server-side layers, in topological order.
  std::vector<LayerId> server_layers() const;
  /// Total weight bytes that must reside on the server for this plan.
  Bytes server_bytes(const DnnModel& model) const;
  int num_server_layers() const;
};

/// Bytes of live activation tensors crossing the cut after each position
/// (index i = cut between layer i and layer i+1). Size = num_layers.
std::vector<Bytes> live_cut_bytes(const DnnModel& model);

/// Shortest-path execution plan. `uploadable[i]` marks layers whose weights
/// are available (or will be made available) at the server; pass nullptr to
/// allow every layer (used when deriving the target partitioning plan).
PartitionPlan compute_best_plan(const PartitionContext& context,
                                const std::vector<bool>* uploadable = nullptr);

/// Latency of executing with the given availability, without materialising
/// the plan (used in tight loops: query simulation, upload-order search).
Seconds plan_latency(const PartitionContext& context,
                     const std::vector<bool>& uploadable);

/// The forward rows of the two-row shortest-path DP: at_client[i] /
/// at_server[i] are the earliest completion times of layer i with the live
/// tensors residing at the client / server (kInfSeconds when unreachable).
/// `latency` equals plan_latency() for the same availability — including the
/// final result-downlink hop. Exposed for the incremental upload-order
/// planner, which refreshes these rows once per greedy round instead of
/// re-running the full DP once per candidate.
struct ForwardDp {
  std::vector<Seconds> at_client;
  std::vector<Seconds> at_server;
  Seconds latency = 0.0;
};

ForwardDp plan_forward_dp(const PartitionContext& context,
                          const std::vector<bool>& uploadable);

/// Latency when every layer runs on the client (no offloading at all).
Seconds local_only_latency(const PartitionContext& context);

}  // namespace perdnn
