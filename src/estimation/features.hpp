// Feature extraction shared by all execution-time estimators. The paper's
// estimators consume (a) layer hyperparameters and (b) the server's GPU
// statistics; keeping the encoding in one place guarantees the profiler, the
// trainers and the online partitioning path agree on the feature layout.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "device/gpu_model.hpp"
#include "nn/layer.hpp"
#include "nn/model.hpp"

namespace perdnn {

/// Hyperparameter features of a layer. FLOPs and byte counts are scaled to
/// comparable magnitudes so the ridge solves stay well-conditioned.
Vector layer_features(const LayerSpec& layer, Bytes input_bytes);

/// Names aligned with layer_features() entries (for importance reports).
const std::vector<std::string>& layer_feature_names();

/// GPU workload features from an nvml-style snapshot.
Vector load_features(const GpuStats& stats);

/// Names aligned with load_features() entries.
const std::vector<std::string>& load_feature_names();

/// Concatenation [layer_features | load_features].
Vector combined_features(const LayerSpec& layer, Bytes input_bytes,
                         const GpuStats& stats);

// Allocation-free variants: overwrite `out` (resized once, then reused), so
// per-query estimator calls touch no allocator after warm-up. Values are
// bit-identical to the allocating functions above.
void layer_features_into(const LayerSpec& layer, Bytes input_bytes,
                         Vector& out);
void combined_features_into(const LayerSpec& layer, Bytes input_bytes,
                            const GpuStats& stats, Vector& out);

/// Names aligned with combined_features().
std::vector<std::string> combined_feature_names();

/// Entries per row written by combined_features_rows() (== the size of
/// combined_features()).
std::size_t combined_feature_count();

/// Whole-model feature-matrix assembly for the batched estimators: writes
/// model.num_layers() rows of combined features starting at `out`, rows
/// `stride` doubles apart (stride >= combined_feature_count()). Row i is
/// bit-identical to combined_features(layer i, input_bytes i, stats); the
/// load block is the same for every row, so it is written once and copied.
void combined_features_rows(const DnnModel& model, const GpuStats& stats,
                            double* out, std::size_t stride);

}  // namespace perdnn
