#include "estimation/estimate_cache.hpp"

#include <bit>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace perdnn {

EstimateCache::EstimateCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  PERDNN_CHECK(max_entries_ >= 1);
}

std::size_t EstimateCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the key's 64-bit words; quality is plenty for a memo table.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  mix(reinterpret_cast<std::uintptr_t>(key.model));
  mix(reinterpret_cast<std::uintptr_t>(key.estimator));
  mix(key.generation);
  mix(key.epoch);
  for (std::uint64_t bits : key.stats_bits) mix(bits);
  return static_cast<std::size_t>(h);
}

const std::vector<Seconds>& EstimateCache::estimates(
    const LayerTimeEstimator& estimator, const DnnModel& model,
    const GpuStats& stats) {
  Key key;
  key.model = &model;
  key.estimator = &estimator;
  key.generation = estimator.generation();
  key.stats_bits = {static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(stats.num_clients)) |
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                             stats.age_intervals))
                         << 32),
                    std::bit_cast<std::uint64_t>(stats.kernel_util),
                    std::bit_cast<std::uint64_t>(stats.mem_util),
                    std::bit_cast<std::uint64_t>(stats.mem_usage_mb),
                    std::bit_cast<std::uint64_t>(stats.temperature_c)};

  key.epoch = epoch_;

  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    obs::count("estimate_cache.hits");
    return it->second;
  }
  ++misses_;
  obs::count("estimate_cache.misses");
  if (entries_.size() >= max_entries_) {
    // Garbage-collect entries stranded in earlier epochs first; only a
    // same-epoch overflow forces dropping entries that could still hit.
    std::erase_if(entries_, [this](const auto& kv) {
      return kv.first.epoch != epoch_;
    });
    if (entries_.size() >= max_entries_) {
      entries_.clear();
      live_ = 0;
    }
  }
  ++live_;
  return entries_.emplace(key, estimator.estimate_model(model, stats))
      .first->second;
}

void EstimateCache::invalidate() {
  // Epoch bump instead of a map clear: O(1) on the per-interval refresh
  // path, and the hit/miss sequence is unchanged because the epoch is part
  // of the key — entries from earlier epochs are unreachable exactly as if
  // they had been erased. They are physically reclaimed lazily, on the
  // first cap-triggering miss.
  ++epoch_;
  live_ = 0;
}

}  // namespace perdnn
