#include "estimation/estimate_cache.hpp"

#include <bit>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace perdnn {

EstimateCache::EstimateCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  PERDNN_CHECK(max_entries_ >= 1);
}

std::size_t EstimateCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the key's 64-bit words; quality is plenty for a memo table.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  mix(reinterpret_cast<std::uintptr_t>(key.model));
  mix(reinterpret_cast<std::uintptr_t>(key.estimator));
  mix(key.generation);
  mix(key.epoch);
  for (std::uint64_t bits : key.stats_bits) mix(bits);
  return static_cast<std::size_t>(h);
}

EstimateCache::Key EstimateCache::make_key(
    const LayerTimeEstimator& estimator, const DnnModel& model,
    const GpuStats& stats) const {
  Key key;
  key.model = &model;
  key.estimator = &estimator;
  key.generation = estimator.generation();
  key.stats_bits = {static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(stats.num_clients)) |
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                             stats.age_intervals))
                         << 32),
                    std::bit_cast<std::uint64_t>(stats.kernel_util),
                    std::bit_cast<std::uint64_t>(stats.mem_util),
                    std::bit_cast<std::uint64_t>(stats.mem_usage_mb),
                    std::bit_cast<std::uint64_t>(stats.temperature_c)};
  key.epoch = epoch_;
  return key;
}

// Counts the miss and makes room exactly as estimates() always has; the cap
// logic looks only at sizes and epochs, so batched callers can run it before
// the miss value exists.
void EstimateCache::count_miss_and_make_room() {
  ++misses_;
  obs::count("estimate_cache.misses");
  if (entries_.size() >= max_entries_) {
    // Garbage-collect entries stranded in earlier epochs first; only a
    // same-epoch overflow forces dropping entries that could still hit.
    std::erase_if(entries_, [this](const auto& kv) {
      return kv.first.epoch != epoch_;
    });
    if (entries_.size() >= max_entries_) {
      entries_.clear();
      live_ = 0;
    }
  }
  ++live_;
}

const std::vector<Seconds>& EstimateCache::estimates(
    const LayerTimeEstimator& estimator, const DnnModel& model,
    const GpuStats& stats) {
  const Key key = make_key(estimator, model, stats);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    obs::count("estimate_cache.hits");
    return it->second;
  }
  count_miss_and_make_room();
  return entries_.emplace(key, estimator.estimate_model(model, stats))
      .first->second;
}

void EstimateCache::estimates_batch(
    const LayerTimeEstimator& estimator, const DnnModel& model,
    const std::vector<GpuStats>& stats_block,
    std::vector<const std::vector<Seconds>*>& results) {
  PERDNN_CHECK_MSG(stats_block.size() <= max_entries_,
                   "estimates_batch block exceeds the cache cap");
  results.clear();
  results.reserve(stats_block.size());

  // Pass 1 — classify in call order. Every first-seen miss inserts an empty
  // placeholder immediately, so a key repeated later in the block finds it
  // and classifies as a hit, and the cap GC fires at exactly the same points
  // as the serial call sequence would.
  std::vector<Key> keys;
  keys.reserve(stats_block.size());
  std::vector<std::pair<Key, const GpuStats*>> misses;
  for (const GpuStats& stats : stats_block) {
    const Key key = make_key(estimator, model, stats);
    keys.push_back(key);
    if (entries_.find(key) != entries_.end()) {
      ++hits_;
      obs::count("estimate_cache.hits");
      continue;
    }
    count_miss_and_make_room();
    entries_.emplace(key, std::vector<Seconds>{});
    misses.emplace_back(key, &stats);
  }

  // Pass 2 — compute the misses, filling the placeholders in place. A
  // placeholder can only be gone if a same-epoch overflow cleared the map
  // mid-block; the serial sequence loses the same entries there.
  for (const auto& [key, stats] : misses) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    if (it->second.empty())
      it->second = estimator.estimate_model(model, *stats);
  }

  // Pass 3 — resolve pointers only after every insertion, so rehashing
  // during the miss fills cannot invalidate them.
  for (const Key& key : keys) {
    const auto it = entries_.find(key);
    PERDNN_CHECK_MSG(it != entries_.end(),
                     "estimates_batch entry evicted mid-block (cache cap too "
                     "small for this call pattern)");
    results.push_back(&it->second);
  }
}

void EstimateCache::invalidate() {
  // Epoch bump instead of a map clear: O(1) on the per-interval refresh
  // path, and the hit/miss sequence is unchanged because the epoch is part
  // of the key — entries from earlier epochs are unreachable exactly as if
  // they had been erased. They are physically reclaimed lazily, on the
  // first cap-triggering miss.
  ++epoch_;
  live_ = 0;
}

}  // namespace perdnn
