#include "estimation/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perdnn {

namespace {

constexpr Seconds kMinEstimate = 1e-7;

Seconds clamp_estimate(double value) { return std::max(kMinEstimate, value); }

// Reusable per-thread feature buffer: estimate() is const-thread-safe and
// runs under par::parallel_for, so the scratch must be thread-local. After
// the first call on a thread the resize is a no-op and the estimate path
// performs no heap allocation for feature assembly.
Vector& feature_scratch() {
  thread_local Vector scratch;
  return scratch;
}

// Shared batched estimate_model for the forest-backed estimators: one
// feature-matrix assembly for the whole model, then each layer-kind group
// packed contiguously and pushed through its flat ensemble's batch kernel.
// Layer kinds without a compiled forest fall back to the global ridge, as
// the scalar path does; the output is positionally bit-identical to the
// per-layer estimate() loop because predict_batch_into is bit-identical to
// predict() per row.
void forest_estimate_model_into(
    const std::map<LayerKind, ml::FlatForest>& forests,
    const ml::RidgeRegression& global, const DnnModel& model,
    const GpuStats& stats, Seconds* out) {
  const auto n = static_cast<std::size_t>(model.num_layers());
  if (n == 0) return;
  const std::size_t stride = combined_feature_count();
  // All scratch is thread-local: this runs on the serial control plane but
  // also under estimate_model() calls issued from parallel regions.
  thread_local std::vector<double> rows;
  thread_local std::vector<double> packed;
  thread_local std::vector<double> predictions;
  thread_local std::vector<std::int32_t> group;
  thread_local std::vector<char> covered;
  rows.resize(n * stride);
  combined_features_rows(model, stats, rows.data(), stride);
  covered.assign(n, 0);
  for (const auto& [kind, forest] : forests) {
    group.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (model.layer(static_cast<LayerId>(i)).kind == kind)
        group.push_back(static_cast<std::int32_t>(i));
    }
    if (group.empty()) continue;
    packed.resize(group.size() * stride);
    for (std::size_t j = 0; j < group.size(); ++j) {
      std::copy_n(rows.data() + static_cast<std::size_t>(group[j]) * stride,
                  stride, packed.data() + j * stride);
    }
    predictions.resize(group.size());
    forest.predict_batch_into(packed.data(), stride, group.size(),
                              predictions.data());
    for (std::size_t j = 0; j < group.size(); ++j) {
      out[group[j]] = clamp_estimate(predictions[j]);
      covered[static_cast<std::size_t>(group[j])] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (covered[i]) continue;
    Vector& feats = feature_scratch();
    feats.assign(rows.data() + i * stride, rows.data() + i * stride + stride);
    out[i] = clamp_estimate(global.predict(feats));
  }
}

}  // namespace

void LayerTimeEstimator::estimate_model_into(const DnnModel& model,
                                             const GpuStats& stats,
                                             Seconds* out) const {
  const auto n = static_cast<std::size_t>(model.num_layers());
  par::parallel_for(n, [&](std::size_t i) {
    const auto id = static_cast<LayerId>(i);
    out[i] = estimate(model.layer(id), model.input_bytes(id), stats);
  });
}

std::vector<Seconds> LayerTimeEstimator::estimate_model(
    const DnnModel& model, const GpuStats& stats) const {
  std::vector<Seconds> times(static_cast<std::size_t>(model.num_layers()));
  estimate_model_into(model, stats, times.data());
  return times;
}

// ---------------------------------------------------------------- LL

void NeurosurgeonEstimator::train(const std::vector<ProfileRecord>& records,
                                  Rng& /*rng*/) {
  PERDNN_CHECK(!records.empty());
  bump_generation();
  models_.clear();
  kind_fallback_.clear();
  count_index_.clear();

  std::map<std::pair<LayerKind, int>, ml::Dataset> buckets;
  std::map<LayerKind, ml::Dataset> kind_buckets;
  for (const auto& rec : records) {
    const Vector feats = layer_features(rec.layer, rec.input_bytes);
    buckets[{rec.layer.kind, rec.stats.num_clients}].add(feats, rec.time);
    kind_buckets[rec.layer.kind].add(feats, rec.time);
  }
  const ml::RidgeConfig config{.ridge = 1e-4, .log_features = true};
  for (auto& [key, data] : buckets) {
    if (data.size() < 4) continue;  // too few samples for a stable solve
    ml::RidgeRegression model(config);
    model.fit(data);
    models_.emplace(key, std::move(model));
  }
  for (auto& [kind, data] : kind_buckets) {
    if (data.size() < 4) continue;
    ml::RidgeRegression model(config);
    model.fit(data);
    kind_fallback_.emplace(kind, std::move(model));
  }
  PERDNN_CHECK_MSG(!models_.empty() || !kind_fallback_.empty(),
                   "no bucket had enough samples to train");
  // models_ iterates in (kind, count) order, so per-kind vectors come out
  // already sorted by client count — ready for binary search in estimate().
  for (const auto& [key, model] : models_)
    count_index_[key.first].emplace_back(key.second, &model);
}

Seconds NeurosurgeonEstimator::estimate(const LayerSpec& layer,
                                        Bytes input_bytes,
                                        const GpuStats& stats) const {
  Vector& feats = feature_scratch();
  layer_features_into(layer, input_bytes, feats);
  // Exact (kind, clients) bucket if we have it...
  const ml::RidgeRegression* model = nullptr;
  const auto it = models_.find({layer.kind, stats.num_clients});
  if (it != models_.end()) {
    model = &it->second;
  } else if (const auto idx = count_index_.find(layer.kind);
             idx != count_index_.end()) {
    // ... else the nearest trained client count for this kind; ties go to
    // the lower count, matching the original ascending scan.
    const auto& counts = idx->second;
    const auto hi = std::lower_bound(
        counts.begin(), counts.end(), stats.num_clients,
        [](const auto& entry, int value) { return entry.first < value; });
    if (hi == counts.begin()) {
      model = hi->second;
    } else if (hi == counts.end()) {
      model = std::prev(hi)->second;
    } else {
      const auto lo = std::prev(hi);
      const int delta_lo = stats.num_clients - lo->first;
      const int delta_hi = hi->first - stats.num_clients;
      model = delta_lo <= delta_hi ? lo->second : hi->second;
    }
  }
  if (model != nullptr) return clamp_estimate(model->predict(feats));
  const auto fb = kind_fallback_.find(layer.kind);
  if (fb != kind_fallback_.end())
    return clamp_estimate(fb->second.predict(feats));
  return kMinEstimate;  // never-profiled kind: treat as negligible
}

// ---------------------------------------------------------------- LL+load

void LoadAwareLinearEstimator::train(const std::vector<ProfileRecord>& records,
                                     Rng& /*rng*/) {
  PERDNN_CHECK(!records.empty());
  bump_generation();
  models_.clear();

  std::map<LayerKind, ml::Dataset> buckets;
  ml::Dataset all;
  for (const auto& rec : records) {
    const Vector feats =
        combined_features(rec.layer, rec.input_bytes, rec.stats);
    buckets[rec.layer.kind].add(feats, rec.time);
    all.add(feats, rec.time);
  }
  const ml::RidgeConfig config{.ridge = 1e-4, .log_features = true};
  for (auto& [kind, data] : buckets) {
    if (data.size() < 8) continue;
    ml::RidgeRegression model(config);
    model.fit(data);
    models_.emplace(kind, std::move(model));
  }
  global_ = std::make_unique<ml::RidgeRegression>(config);
  global_->fit(all);
}

Seconds LoadAwareLinearEstimator::estimate(const LayerSpec& layer,
                                           Bytes input_bytes,
                                           const GpuStats& stats) const {
  PERDNN_CHECK_MSG(global_ != nullptr, "estimate() before train()");
  Vector& feats = feature_scratch();
  combined_features_into(layer, input_bytes, stats, feats);
  const auto it = models_.find(layer.kind);
  if (it != models_.end()) return clamp_estimate(it->second.predict(feats));
  return clamp_estimate(global_->predict(feats));
}

// ---------------------------------------------------------------- RF+load

RandomForestEstimator::RandomForestEstimator(
    RandomForestEstimatorConfig config)
    : config_(config) {}

void RandomForestEstimator::train(const std::vector<ProfileRecord>& records,
                                  Rng& rng) {
  PERDNN_SPAN("estimator.train");
  obs::count("estimator.train_records", static_cast<double>(records.size()));
  PERDNN_CHECK(!records.empty());
  bump_generation();
  models_.clear();
  flat_.clear();

  std::map<LayerKind, ml::Dataset> buckets;
  ml::Dataset all;
  for (const auto& rec : records) {
    const Vector feats =
        combined_features(rec.layer, rec.input_bytes, rec.stats);
    buckets[rec.layer.kind].add(feats, rec.time);
    all.add(feats, rec.time);
  }
  for (auto& [kind, data] : buckets) {
    if (data.size() < 16) continue;
    ml::RandomForest forest(config_.forest);
    forest.fit(data, rng);
    flat_.emplace(kind, ml::FlatForest::compile(forest));
    models_.emplace(kind, std::move(forest));
  }
  const ml::RidgeConfig linear_config{.ridge = 1e-4, .log_features = true};
  global_ = std::make_unique<ml::RidgeRegression>(linear_config);
  global_->fit(all);
}

Seconds RandomForestEstimator::estimate(const LayerSpec& layer,
                                        Bytes input_bytes,
                                        const GpuStats& stats) const {
  obs::count("estimator.estimates");
  PERDNN_CHECK_MSG(global_ != nullptr, "estimate() before train()");
  Vector& feats = feature_scratch();
  combined_features_into(layer, input_bytes, stats, feats);
  if (fastpath::enabled()) {
    const auto it = flat_.find(layer.kind);
    if (it != flat_.end()) return clamp_estimate(it->second.predict(feats));
  } else {
    const auto it = models_.find(layer.kind);
    if (it != models_.end()) return clamp_estimate(it->second.predict(feats));
  }
  return clamp_estimate(global_->predict(feats));
}

void RandomForestEstimator::estimate_model_into(const DnnModel& model,
                                                const GpuStats& stats,
                                                Seconds* out) const {
  PERDNN_CHECK_MSG(global_ != nullptr, "estimate_model() before train()");
  if (!fastpath::enabled()) {
    LayerTimeEstimator::estimate_model_into(model, stats, out);
    return;
  }
  // One count per layer, matching the per-call counter in estimate().
  obs::count("estimator.estimates", static_cast<double>(model.num_layers()));
  forest_estimate_model_into(flat_, *global_, model, stats, out);
}

Vector RandomForestEstimator::feature_importance(LayerKind kind) const {
  const auto it = models_.find(kind);
  if (it == models_.end()) return {};
  return it->second.feature_importance();
}

// ---------------------------------------------------------------- GBT+load

GradientBoostedEstimator::GradientBoostedEstimator(ml::GbtConfig config)
    : config_(config) {}

void GradientBoostedEstimator::train(const std::vector<ProfileRecord>& records,
                                     Rng& rng) {
  PERDNN_CHECK(!records.empty());
  bump_generation();
  models_.clear();
  flat_.clear();

  std::map<LayerKind, ml::Dataset> buckets;
  ml::Dataset all;
  for (const auto& rec : records) {
    const Vector feats =
        combined_features(rec.layer, rec.input_bytes, rec.stats);
    buckets[rec.layer.kind].add(feats, rec.time);
    all.add(feats, rec.time);
  }
  for (auto& [kind, data] : buckets) {
    if (data.size() < 16) continue;
    ml::GradientBoostedTrees model(config_);
    model.fit(data, rng);
    flat_.emplace(kind, ml::FlatForest::compile(model));
    models_.emplace(kind, std::move(model));
  }
  const ml::RidgeConfig linear_config{.ridge = 1e-4, .log_features = true};
  global_ = std::make_unique<ml::RidgeRegression>(linear_config);
  global_->fit(all);
}

Seconds GradientBoostedEstimator::estimate(const LayerSpec& layer,
                                           Bytes input_bytes,
                                           const GpuStats& stats) const {
  PERDNN_CHECK_MSG(global_ != nullptr, "estimate() before train()");
  Vector& feats = feature_scratch();
  combined_features_into(layer, input_bytes, stats, feats);
  if (fastpath::enabled()) {
    const auto it = flat_.find(layer.kind);
    if (it != flat_.end()) return clamp_estimate(it->second.predict(feats));
  } else {
    const auto it = models_.find(layer.kind);
    if (it != models_.end()) return clamp_estimate(it->second.predict(feats));
  }
  return clamp_estimate(global_->predict(feats));
}

void GradientBoostedEstimator::estimate_model_into(const DnnModel& model,
                                                   const GpuStats& stats,
                                                   Seconds* out) const {
  PERDNN_CHECK_MSG(global_ != nullptr, "estimate_model() before train()");
  if (!fastpath::enabled()) {
    LayerTimeEstimator::estimate_model_into(model, stats, out);
    return;
  }
  forest_estimate_model_into(flat_, *global_, model, stats, out);
}

// ---------------------------------------------------------------- eval

double estimator_mae(const LayerTimeEstimator& estimator,
                     const std::vector<ProfileRecord>& records,
                     int num_clients, LayerKind kind) {
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(records.size());
  actual.reserve(records.size());
  for (const auto& rec : records) {
    if (num_clients >= 0 && rec.stats.num_clients != num_clients) continue;
    if (kind != LayerKind::kInput && rec.layer.kind != kind) continue;
    predicted.push_back(
        estimator.estimate(rec.layer, rec.input_bytes, rec.stats));
    actual.push_back(rec.time);
  }
  return mean_absolute_error(predicted, actual);
}

}  // namespace perdnn
