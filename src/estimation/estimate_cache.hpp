// Memoised per-layer server-time estimates (the fast path's interval-scoped
// estimate cache).
//
// The control plane evaluates the same estimator on the same (model, GPU
// state) pair over and over: the master re-plans for every candidate server
// a client can see, and co-located candidates — or repeated pings within one
// statistics interval — report identical GpuStats. The cache keys the full
// estimate_model() output vector by
//
//     (model identity, estimator generation, exact GpuStats bit pattern)
//
// so a hit returns the previously computed vector without touching the
// estimator. Keying rules:
//   * model identity is the DnnModel address — owners whose model storage
//     can move (e.g. MasterServer's client table) must invalidate() on any
//     mutation that may reallocate;
//   * the estimator generation (bumped by every train()) makes entries from
//     before a retrain unreachable, so retraining needs no explicit flush;
//   * GpuStats are compared bit-exactly — the cache only ever short-circuits
//     calls that would have produced byte-identical outputs, which is what
//     keeps fast-path-on and fast-path-off runs indistinguishable.
// invalidate() is the explicit hook for per-interval statistics refreshes.
// It bumps an epoch that is part of the key (O(1)) instead of clearing the
// map; stale-epoch entries are garbage-collected when a miss finds the map
// at its soft cap.
//
// Not thread-safe: callers use it from the serial control-plane sections
// (the simulator's level fill, the master's planning calls).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "estimation/estimator.hpp"

namespace perdnn {

class EstimateCache {
 public:
  /// `max_entries` bounds growth: a miss that finds the map at the cap
  /// first reclaims stale-epoch entries, and clears outright only if the
  /// current epoch alone still fills it (simple and deterministic; an LRU
  /// would add bookkeeping to the hit path).
  explicit EstimateCache(std::size_t max_entries = 4096);

  /// Memoised `estimator.estimate_model(model, stats)`. The returned
  /// reference stays valid until the next invalidate() (or cap-triggered
  /// clear on a later miss).
  const std::vector<Seconds>& estimates(const LayerTimeEstimator& estimator,
                                        const DnnModel& model,
                                        const GpuStats& stats);

  /// Batched probe: equivalent to calling estimates() once per entry of
  /// `stats_block` (same estimator/model for the whole block — the shape of
  /// the level-fill and planning call sites), but the block is partitioned
  /// into hits and misses in one pass and only the misses compute. The
  /// hit/miss counters, cap GC and final cache contents match the serial
  /// call sequence exactly: a key repeated within the block misses once and
  /// hits thereafter. Returned pointers (one per query, positional) follow
  /// the same lifetime rule as estimates(). `stats_block.size()` must not
  /// exceed the cache cap.
  void estimates_batch(const LayerTimeEstimator& estimator,
                       const DnnModel& model,
                       const std::vector<GpuStats>& stats_block,
                       std::vector<const std::vector<Seconds>*>& results);

  /// Makes every current entry unreachable (per-interval statistics
  /// refresh, model reallocation). O(1): bumps the key epoch rather than
  /// clearing the map — the hit/miss sequence is indistinguishable from a
  /// clear, and stale entries are reclaimed lazily on the first
  /// cap-triggering miss.
  void invalidate();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Entries reachable in the current epoch (what a hit can return).
  /// Stale-epoch entries awaiting lazy reclamation are not counted.
  std::size_t size() const { return live_; }

  /// Restores the whole-run hit/miss tallies from a checkpoint. Entries are
  /// never checkpointed — they are invalidated at every interval start, so a
  /// resumed run rebuilds them identically.
  void set_counters(std::uint64_t hits, std::uint64_t misses) {
    hits_ = hits;
    misses_ = misses;
  }

 private:
  struct Key {
    const void* model = nullptr;
    /// Estimator identity: one cache may now serve several estimators (the
    /// master's primary and its degraded-mode fallback share the cache), and
    /// generation counters are per-instance, so the address disambiguates.
    const void* estimator = nullptr;
    std::uint64_t generation = 0;
    /// invalidate() epoch the entry was inserted in; entries from earlier
    /// epochs never match a current-epoch lookup key.
    std::uint64_t epoch = 0;
    /// num_clients and age_intervals packed, plus the four doubles of
    /// GpuStats bit-cast — a stale snapshot whose values happen to equal a
    /// fresh one must not collide.
    std::array<std::uint64_t, 5> stats_bits{};

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  Key make_key(const LayerTimeEstimator& estimator, const DnnModel& model,
               const GpuStats& stats) const;
  /// Miss bookkeeping shared by the serial and batched paths: counter,
  /// stale-epoch GC / overflow clear at the cap, live count.
  void count_miss_and_make_room();

  std::size_t max_entries_;
  std::unordered_map<Key, std::vector<Seconds>, KeyHash> entries_;
  std::uint64_t epoch_ = 0;
  std::size_t live_ = 0;  ///< entries inserted in the current epoch
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace perdnn
