// Layer execution-time estimators (Section 3.C.1).
//
// Three families, mirroring Fig 4:
//   * NeurosurgeonEstimator ("LL")          — linear/log regression on layer
//     hyperparameters only, one model per (layer type, nominal client count);
//   * LoadAwareLinearEstimator ("LL+load")  — the same regression family but
//     with the GPU statistics appended to the features;
//   * RandomForestEstimator ("RF+load")     — the paper's estimator: one
//     random forest per layer type over hyperparameters + GPU statistics.
//
// All estimators train on ProfileRecords produced by the ConcurrencyProfiler
// and expose the same estimate() used by the DNN partitioner.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "device/profiler.hpp"
#include "estimation/features.hpp"
#include "ml/flat_forest.hpp"
#include "ml/gbt.hpp"
#include "ml/linear_model.hpp"
#include "ml/random_forest.hpp"

namespace perdnn {

class LayerTimeEstimator {
 public:
  virtual ~LayerTimeEstimator() = default;

  /// Trains from profiling records. Must be called before estimate().
  virtual void train(const std::vector<ProfileRecord>& records, Rng& rng) = 0;

  /// Estimated server-side execution time of one layer under the observed
  /// GPU state. Never negative.
  virtual Seconds estimate(const LayerSpec& layer, Bytes input_bytes,
                           const GpuStats& stats) const = 0;

  /// Batch estimate for every layer of a model under one GPU state — the
  /// shape every plan-building call site needs. Layers are independent, so
  /// the loop fans out across the parallel runtime; results are positional
  /// and bit-identical to calling estimate() serially. estimate() must be
  /// const-thread-safe (all built-in estimators are: trained models are
  /// immutable after train()).
  std::vector<Seconds> estimate_model(const DnnModel& model,
                                      const GpuStats& stats) const;

  /// In-place form of estimate_model(): writes exactly model.num_layers()
  /// entries to `out`. The base implementation fans the per-layer
  /// estimate() loop across the parallel runtime; the forest-backed
  /// estimators override it with a batched kernel that assembles one
  /// feature matrix and pushes each layer-kind group through
  /// FlatForest::predict_batch_into. Results are positionally bit-identical
  /// either way.
  virtual void estimate_model_into(const DnnModel& model,
                                   const GpuStats& stats, Seconds* out) const;

  virtual std::string name() const = 0;

  /// Monotonic train() counter. EstimateCache keys include it, so entries
  /// computed before a retrain become unreachable without an explicit flush.
  /// Every train() implementation must call bump_generation().
  std::uint64_t generation() const { return generation_; }

 protected:
  void bump_generation() { ++generation_; }

 private:
  std::uint64_t generation_ = 0;
};

/// NeuroSurgeon-style baseline: per (layer kind, #clients) linear/log model
/// on hyperparameters only. Unseen client counts clamp to the nearest
/// trained level; unseen layer kinds fall back to a global model.
class NeurosurgeonEstimator : public LayerTimeEstimator {
 public:
  void train(const std::vector<ProfileRecord>& records, Rng& rng) override;
  Seconds estimate(const LayerSpec& layer, Bytes input_bytes,
                   const GpuStats& stats) const override;
  std::string name() const override { return "LL"; }

 private:
  std::map<std::pair<LayerKind, int>, ml::RidgeRegression> models_;
  std::map<LayerKind, ml::RidgeRegression> kind_fallback_;
  /// Train-time index for the nearest-client-count fallback: per kind, the
  /// trained client counts with their models, sorted by count (map nodes are
  /// stable, so the pointers survive). Replaces a linear scan of `models_`
  /// on every estimate() whose exact (kind, count) bucket is missing.
  std::map<LayerKind, std::vector<std::pair<int, const ml::RidgeRegression*>>>
      count_index_;
};

/// LL augmented with GPU load features (the paper's "LL w/ server load
/// info" ablation).
class LoadAwareLinearEstimator : public LayerTimeEstimator {
 public:
  void train(const std::vector<ProfileRecord>& records, Rng& rng) override;
  Seconds estimate(const LayerSpec& layer, Bytes input_bytes,
                   const GpuStats& stats) const override;
  std::string name() const override { return "LL+load"; }

 private:
  std::map<LayerKind, ml::RidgeRegression> models_;
  std::unique_ptr<ml::RidgeRegression> global_;
};

struct RandomForestEstimatorConfig {
  ml::ForestConfig forest;
};

/// The paper's estimator: per layer kind random forests over hyperparameters
/// and GPU statistics; exposes impurity feature importances (Fig 4, right).
class RandomForestEstimator : public LayerTimeEstimator {
 public:
  explicit RandomForestEstimator(RandomForestEstimatorConfig config = {});

  void train(const std::vector<ProfileRecord>& records, Rng& rng) override;
  Seconds estimate(const LayerSpec& layer, Bytes input_bytes,
                   const GpuStats& stats) const override;
  void estimate_model_into(const DnnModel& model, const GpuStats& stats,
                           Seconds* out) const override;
  std::string name() const override { return "RF+load"; }

  /// Normalised importances for the given kind, aligned with
  /// combined_feature_names(); empty if that kind was never trained.
  Vector feature_importance(LayerKind kind) const;

 private:
  RandomForestEstimatorConfig config_;
  std::map<LayerKind, ml::RandomForest> models_;
  /// Forests compiled to the SoA layout at train time; estimate() walks
  /// these when the fast path is enabled (bit-identical predictions).
  std::map<LayerKind, ml::FlatForest> flat_;
  std::unique_ptr<ml::RidgeRegression> global_;
};

/// Extension beyond the paper: per-kind gradient-boosted trees over the same
/// combined features. Compared against the random forest in the benches.
class GradientBoostedEstimator : public LayerTimeEstimator {
 public:
  explicit GradientBoostedEstimator(ml::GbtConfig config = {});

  void train(const std::vector<ProfileRecord>& records, Rng& rng) override;
  Seconds estimate(const LayerSpec& layer, Bytes input_bytes,
                   const GpuStats& stats) const override;
  void estimate_model_into(const DnnModel& model, const GpuStats& stats,
                           Seconds* out) const override;
  std::string name() const override { return "GBT+load"; }

 private:
  ml::GbtConfig config_;
  std::map<LayerKind, ml::GradientBoostedTrees> models_;
  std::map<LayerKind, ml::FlatForest> flat_;  // fast-path compiled ensembles
  std::unique_ptr<ml::RidgeRegression> global_;
};

/// MAE of an estimator over records (optionally restricted to one nominal
/// client count and/or one layer kind; pass -1 / nullopt-like defaults).
double estimator_mae(const LayerTimeEstimator& estimator,
                     const std::vector<ProfileRecord>& records,
                     int num_clients = -1,
                     LayerKind kind = LayerKind::kInput);

}  // namespace perdnn
