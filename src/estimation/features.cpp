#include "estimation/features.hpp"

namespace perdnn {

Vector layer_features(const LayerSpec& layer, Bytes input_bytes) {
  return {
      layer.flops / 1e9,                            // GFLOPs
      static_cast<double>(input_bytes) / 1e6,       // MB in
      static_cast<double>(layer.output_bytes) / 1e6,
      static_cast<double>(layer.weight_bytes) / 1e6,
      static_cast<double>(layer.in_channels),
      static_cast<double>(layer.out_channels),
      static_cast<double>(layer.kernel),
      static_cast<double>(layer.stride),
      static_cast<double>(layer.out_height),
  };
}

const std::vector<std::string>& layer_feature_names() {
  static const std::vector<std::string> names = {
      "gflops",       "input_mb",  "output_mb", "weight_mb", "in_channels",
      "out_channels", "kernel",    "stride",    "out_height"};
  return names;
}

Vector load_features(const GpuStats& stats) {
  return {
      static_cast<double>(stats.num_clients),
      stats.kernel_util,
      stats.mem_util,
      stats.mem_usage_mb / 1e3,  // GB
      stats.temperature_c,
  };
}

const std::vector<std::string>& load_feature_names() {
  static const std::vector<std::string> names = {
      "num_clients", "kernel_util", "mem_util", "mem_usage_gb",
      "temperature"};
  return names;
}

Vector combined_features(const LayerSpec& layer, Bytes input_bytes,
                         const GpuStats& stats) {
  Vector out = layer_features(layer, input_bytes);
  const Vector load = load_features(stats);
  out.insert(out.end(), load.begin(), load.end());
  return out;
}

std::vector<std::string> combined_feature_names() {
  std::vector<std::string> names = layer_feature_names();
  const auto& load = load_feature_names();
  names.insert(names.end(), load.begin(), load.end());
  return names;
}

}  // namespace perdnn
