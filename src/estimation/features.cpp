#include "estimation/features.hpp"

#include <algorithm>

namespace perdnn {

namespace {

constexpr std::size_t kNumLayerFeatures = 9;
constexpr std::size_t kNumLoadFeatures = 5;

void write_layer_features(const LayerSpec& layer, Bytes input_bytes,
                          double* out) {
  out[0] = layer.flops / 1e9;  // GFLOPs
  out[1] = static_cast<double>(input_bytes) / 1e6;  // MB in
  out[2] = static_cast<double>(layer.output_bytes) / 1e6;
  out[3] = static_cast<double>(layer.weight_bytes) / 1e6;
  out[4] = static_cast<double>(layer.in_channels);
  out[5] = static_cast<double>(layer.out_channels);
  out[6] = static_cast<double>(layer.kernel);
  out[7] = static_cast<double>(layer.stride);
  out[8] = static_cast<double>(layer.out_height);
}

void write_load_features(const GpuStats& stats, double* out) {
  out[0] = static_cast<double>(stats.num_clients);
  out[1] = stats.kernel_util;
  out[2] = stats.mem_util;
  out[3] = stats.mem_usage_mb / 1e3;  // GB
  out[4] = stats.temperature_c;
}

}  // namespace

void layer_features_into(const LayerSpec& layer, Bytes input_bytes,
                         Vector& out) {
  out.resize(kNumLayerFeatures);
  write_layer_features(layer, input_bytes, out.data());
}

Vector layer_features(const LayerSpec& layer, Bytes input_bytes) {
  Vector out;
  layer_features_into(layer, input_bytes, out);
  return out;
}

const std::vector<std::string>& layer_feature_names() {
  static const std::vector<std::string> names = {
      "gflops",       "input_mb",  "output_mb", "weight_mb", "in_channels",
      "out_channels", "kernel",    "stride",    "out_height"};
  return names;
}

Vector load_features(const GpuStats& stats) {
  Vector out(kNumLoadFeatures);
  write_load_features(stats, out.data());
  return out;
}

const std::vector<std::string>& load_feature_names() {
  static const std::vector<std::string> names = {
      "num_clients", "kernel_util", "mem_util", "mem_usage_gb",
      "temperature"};
  return names;
}

void combined_features_into(const LayerSpec& layer, Bytes input_bytes,
                            const GpuStats& stats, Vector& out) {
  out.resize(kNumLayerFeatures + kNumLoadFeatures);
  write_layer_features(layer, input_bytes, out.data());
  write_load_features(stats, out.data() + kNumLayerFeatures);
}

Vector combined_features(const LayerSpec& layer, Bytes input_bytes,
                         const GpuStats& stats) {
  Vector out;
  combined_features_into(layer, input_bytes, stats, out);
  return out;
}

std::size_t combined_feature_count() {
  return kNumLayerFeatures + kNumLoadFeatures;
}

void combined_features_rows(const DnnModel& model, const GpuStats& stats,
                            double* out, std::size_t stride) {
  const auto n = static_cast<std::size_t>(model.num_layers());
  if (n == 0) return;
  write_layer_features(model.layer(0), model.input_bytes(0), out);
  write_load_features(stats, out + kNumLayerFeatures);
  for (std::size_t i = 1; i < n; ++i) {
    const auto id = static_cast<LayerId>(i);
    double* row = out + i * stride;
    write_layer_features(model.layer(id), model.input_bytes(id), row);
    // The load block never varies within one call; replicate row 0's copy.
    std::copy_n(out + kNumLayerFeatures, kNumLoadFeatures,
                row + kNumLayerFeatures);
  }
}

std::vector<std::string> combined_feature_names() {
  std::vector<std::string> names = layer_feature_names();
  const auto& load = load_feature_names();
  names.insert(names.end(), load.begin(), load.end());
  return names;
}

}  // namespace perdnn
