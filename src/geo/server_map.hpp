// Edge-server placement database (the paper's "Wi-Fi database", cf. WiGLE).
//
// The paper allocates one edge server per hexagonal cell that any user
// visited, so every trace point has a serving edge server. The master server
// consults this map to (a) find the client's current server and (b) find all
// servers within radius r of a predicted location for proactive migration.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "geo/hex_grid.hpp"
#include "geo/point.hpp"

namespace perdnn {

class ServerMap {
 public:
  /// Creates an empty map over a hex grid with the given cell radius.
  explicit ServerMap(double cell_radius_m);

  /// Allocates servers for every cell touched by the given points (idempotent
  /// per cell). Returns the number of servers newly created.
  int allocate_for_visits(const std::vector<Point>& points);

  /// Allocates (or returns the existing) server for the cell containing p.
  ServerId allocate_at(Point p);

  /// Server of the cell containing p, or kNoServer if that cell has none.
  ServerId server_at(Point p) const;

  /// Nearest server to p by centre distance, searching outward up to
  /// `max_radius_m`; kNoServer if none within range.
  ServerId nearest_server(Point p, double max_radius_m) const;

  /// All servers whose cell centre is within radius_m of p.
  std::vector<ServerId> servers_within(Point p, double radius_m) const;

  /// Allocation-free variant for per-interval hot loops: fills `out` with
  /// the same (sorted) ids, using `cells_scratch` for the ring enumeration.
  /// Both vectors are cleared; their capacity is reused across calls.
  void servers_within_into(Point p, double radius_m,
                           std::vector<HexCoord>& cells_scratch,
                           std::vector<ServerId>& out) const;

  /// Centre of a server's cell.
  Point server_center(ServerId id) const;

  int num_servers() const { return static_cast<int>(centers_.size()); }
  const HexGrid& grid() const { return grid_; }

 private:
  HexGrid grid_;
  std::unordered_map<HexCoord, ServerId, HexCoordHash> cell_to_server_;
  std::vector<Point> centers_;  // indexed by ServerId
};

}  // namespace perdnn
