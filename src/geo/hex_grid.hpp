// Hexagonal tessellation of the study area.
//
// The paper divides the region into a hexagonal grid whose cells have a
// radius of 50 m (the service range of a typical Wi-Fi AP) and allocates an
// edge server per visited cell. We use pointy-top hexagons in axial (q, r)
// coordinates; the conversions follow the standard cube-coordinate
// formulation (Red Blob Games / Amit Patel).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/point.hpp"

namespace perdnn {

/// Axial hexagon coordinate.
struct HexCoord {
  std::int32_t q = 0;
  std::int32_t r = 0;

  friend bool operator==(HexCoord a, HexCoord b) {
    return a.q == b.q && a.r == b.r;
  }
};

struct HexCoordHash {
  std::size_t operator()(HexCoord h) const {
    const auto uq = static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.q));
    const auto ur = static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.r));
    return std::hash<std::uint64_t>{}((uq << 32) | ur);
  }
};

/// Pointy-top hexagonal grid with circumradius `cell_radius_m` metres.
class HexGrid {
 public:
  explicit HexGrid(double cell_radius_m);

  double cell_radius() const { return radius_; }

  /// Centre of a cell on the metric plane.
  Point center(HexCoord cell) const;

  /// Cell containing the given point (cube rounding).
  HexCoord cell_at(Point p) const;

  /// Hex (grid) distance between two cells, in cell steps.
  static std::int32_t hex_distance(HexCoord a, HexCoord b);

  /// The six neighbours of a cell.
  static std::vector<HexCoord> neighbors(HexCoord cell);

  /// All cells whose centre lies within `radius_m` metres of `p`.
  /// Enumerates the bounding hex ring rather than scanning the whole grid.
  std::vector<HexCoord> cells_within(Point p, double radius_m) const;

  /// Allocation-free variant for per-interval hot loops: clears `out` and
  /// fills it with the same cells (capacity is reused across calls).
  void cells_within_into(Point p, double radius_m,
                         std::vector<HexCoord>& out) const;

 private:
  double radius_;
};

}  // namespace perdnn
