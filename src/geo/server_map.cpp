#include "geo/server_map.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace perdnn {

ServerMap::ServerMap(double cell_radius_m) : grid_(cell_radius_m) {}

int ServerMap::allocate_for_visits(const std::vector<Point>& points) {
  const int before = num_servers();
  for (Point p : points) allocate_at(p);
  return num_servers() - before;
}

ServerId ServerMap::allocate_at(Point p) {
  const HexCoord cell = grid_.cell_at(p);
  auto it = cell_to_server_.find(cell);
  if (it != cell_to_server_.end()) return it->second;
  const auto id = static_cast<ServerId>(centers_.size());
  cell_to_server_.emplace(cell, id);
  centers_.push_back(grid_.center(cell));
  return id;
}

ServerId ServerMap::server_at(Point p) const {
  const auto it = cell_to_server_.find(grid_.cell_at(p));
  return it == cell_to_server_.end() ? kNoServer : it->second;
}

ServerId ServerMap::nearest_server(Point p, double max_radius_m) const {
  PERDNN_CHECK(max_radius_m >= 0.0);
  // Expanding-ring search: most queries hit within a cell or two, so start
  // small and double the radius until something is found. A candidate found
  // at radius r is only conclusive once the search radius reaches its
  // distance (a nearer server could hide just outside the scanned disc), so
  // expand once more when the best hit is near the boundary.
  double radius = std::min(max_radius_m, grid_.cell_radius() * 1.5);
  while (true) {
    ServerId best = kNoServer;
    double best_dist = max_radius_m;
    for (HexCoord cell : grid_.cells_within(p, radius)) {
      const auto it = cell_to_server_.find(cell);
      if (it == cell_to_server_.end()) continue;
      const double d =
          distance(centers_[static_cast<std::size_t>(it->second)], p);
      if (d <= best_dist) {
        best_dist = d;
        best = it->second;
      }
    }
    if (best != kNoServer && best_dist <= radius) return best;
    if (radius >= max_radius_m) return best;
    radius = std::min(max_radius_m, radius * 2.0);
  }
}

std::vector<ServerId> ServerMap::servers_within(Point p, double radius_m) const {
  std::vector<HexCoord> cells;
  std::vector<ServerId> out;
  servers_within_into(p, radius_m, cells, out);
  return out;
}

void ServerMap::servers_within_into(Point p, double radius_m,
                                    std::vector<HexCoord>& cells_scratch,
                                    std::vector<ServerId>& out) const {
  grid_.cells_within_into(p, radius_m, cells_scratch);
  out.clear();
  for (HexCoord cell : cells_scratch) {
    const auto it = cell_to_server_.find(cell);
    if (it != cell_to_server_.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
}

Point ServerMap::server_center(ServerId id) const {
  PERDNN_CHECK(id >= 0 && id < num_servers());
  return centers_[static_cast<std::size_t>(id)];
}

}  // namespace perdnn
