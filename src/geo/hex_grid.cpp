#include "geo/hex_grid.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace perdnn {

namespace {
constexpr double kSqrt3 = 1.7320508075688772;
}

HexGrid::HexGrid(double cell_radius_m) : radius_(cell_radius_m) {
  PERDNN_CHECK(cell_radius_m > 0.0);
}

Point HexGrid::center(HexCoord cell) const {
  // Pointy-top axial -> pixel.
  const double x = radius_ * kSqrt3 * (cell.q + cell.r / 2.0);
  const double y = radius_ * 1.5 * cell.r;
  return {x, y};
}

HexCoord HexGrid::cell_at(Point p) const {
  // Pixel -> fractional axial.
  const double qf = (kSqrt3 / 3.0 * p.x - 1.0 / 3.0 * p.y) / radius_;
  const double rf = (2.0 / 3.0 * p.y) / radius_;
  // Cube rounding: s = -q - r.
  const double sf = -qf - rf;
  double q = std::round(qf);
  double r = std::round(rf);
  double s = std::round(sf);
  const double dq = std::abs(q - qf);
  const double dr = std::abs(r - rf);
  const double ds = std::abs(s - sf);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return {static_cast<std::int32_t>(q), static_cast<std::int32_t>(r)};
}

std::int32_t HexGrid::hex_distance(HexCoord a, HexCoord b) {
  const std::int32_t dq = a.q - b.q;
  const std::int32_t dr = a.r - b.r;
  const std::int32_t ds = -dq - dr;
  return (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
}

std::vector<HexCoord> HexGrid::neighbors(HexCoord cell) {
  static constexpr std::int32_t kDirs[6][2] = {
      {1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1}};
  std::vector<HexCoord> out;
  out.reserve(6);
  for (const auto& d : kDirs) out.push_back({cell.q + d[0], cell.r + d[1]});
  return out;
}

std::vector<HexCoord> HexGrid::cells_within(Point p, double radius_m) const {
  std::vector<HexCoord> out;
  cells_within_into(p, radius_m, out);
  return out;
}

void HexGrid::cells_within_into(Point p, double radius_m,
                                std::vector<HexCoord>& out) const {
  PERDNN_CHECK(radius_m >= 0.0);
  out.clear();
  // Centres are at least sqrt(3)*R apart, so cells within radius_m of p lie
  // within ceil(radius_m / (sqrt(3)*R)) + 1 hex steps of p's cell.
  const HexCoord origin = cell_at(p);
  const auto steps =
      static_cast<std::int32_t>(std::ceil(radius_m / (kSqrt3 * radius_))) + 1;
  for (std::int32_t q = -steps; q <= steps; ++q) {
    for (std::int32_t r = -steps; r <= steps; ++r) {
      if (std::abs(q + r) > steps) continue;  // outside the hex ball
      const HexCoord cell{origin.q + q, origin.r + r};
      if (distance(center(cell), p) <= radius_m) out.push_back(cell);
    }
  }
}

}  // namespace perdnn
