// Planar geometry for the smart-city simulation. Mobility traces are
// projected to a local metric (x, y) plane in metres, as the paper does when
// it clips Geolife to a rectangular area around Beijing subway line 2.
#pragma once

#include <cmath>

namespace perdnn {

/// A point (or displacement) in metres on the local plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }
};

/// Euclidean distance in metres.
inline double distance(Point a, Point b) { return (a - b).norm(); }

/// Axis-aligned rectangle used to clip traces to the study area.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  bool contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  /// Clamps a point into the rectangle (used by trace generators at borders).
  Point clamp(Point p) const {
    return {p.x < min_x ? min_x : (p.x > max_x ? max_x : p.x),
            p.y < min_y ? min_y : (p.y > max_y ? max_y : p.y)};
  }
};

}  // namespace perdnn
