// perdnn — command-line front end for the library.
//
//   perdnn models
//       List the model zoo with sizes, FLOPs and device latencies.
//   perdnn partition <model> [load] [uplink_mbps]
//       Print the partitioning plan for a client/server pair.
//   perdnn traces <campus|urban> <out.txt> [users] [minutes]
//       Generate a synthetic mobility dataset and save it.
//   perdnn simulate <model> <campus|urban|traces.txt> [ionn|perdnn|optimal]
//                   [--timeseries-out FILE] [--metrics-out FILE]
//                   [--metrics-prom-out FILE] [--journal-out FILE]
//                   [--trace-out FILE] [--fault-plan FILE]
//                   [--failure-rate R] [--downtime N]
//                   [--users N] [--minutes M] [--seed S]
//                   [--snapshot-save FILE] [--snapshot-every N]
//                   [--snapshot-at K] [--snapshot-resume FILE]
//       Run the smart-city simulation and print the summary. The
//       observability flags export, respectively: the per-interval
//       per-server timeseries (CSV, or JSON when FILE ends in .json), the
//       metric registry (counters/gauges/histograms; JSON, or Prometheus
//       text format via --metrics-prom-out), the deterministic event
//       journal (JSONL, or the compact binary form when FILE ends in
//       .jnl — see tools/perdnn_obs to query it), and a span trace
//       loadable in chrome://tracing / Perfetto (JSON). Fault flags:
//       --fault-plan loads a scripted JSON fault schedule (see
//       src/faults/fault_plan.hpp); --failure-rate/--downtime drive the
//       legacy per-interval random crash model. The two are mutually
//       exclusive. Snapshot flags: --snapshot-save names the checkpoint
//       file, written every --snapshot-every intervals and/or once after
//       interval --snapshot-at (which then stops the run);
//       --snapshot-resume continues a run from a checkpoint — byte-identical
//       to the uninterrupted run. A corrupt/mismatched snapshot exits 2.
//   perdnn profile <model> <out.txt>
//       Run the concurrency sweep and save estimator-training records.
//
// Unknown commands, flags, model names and policy names are hard errors:
// they print to stderr and exit non-zero instead of silently falling back
// to defaults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/perdnn.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace perdnn;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  perdnn models\n"
               "  perdnn partition <mobilenet|inception|resnet|alexnet|vgg16> "
               "[load] [uplink_mbps]\n"
               "  perdnn traces <campus|urban> <out.txt> [users] [minutes]\n"
               "  perdnn simulate <mobilenet|inception|resnet> "
               "<campus|urban|traces.txt> [ionn|perdnn|optimal]\n"
               "                  [--timeseries-out FILE] [--metrics-out "
               "FILE] [--trace-out FILE]\n"
               "                  [--metrics-prom-out FILE] [--journal-out "
               "FILE]\n"
               "                  [--fault-plan FILE] [--failure-rate R] "
               "[--downtime N]\n"
               "                  [--users N] [--minutes M] [--seed S]\n"
               "                  [--snapshot-save FILE] [--snapshot-every N]"
               " [--snapshot-at K]\n"
               "                  [--snapshot-resume FILE] [--sim-metrics-out FILE]\n"
               "  perdnn profile <model> <out.txt>\n"
               "global flags: --threads N (worker pool size; 1 = serial, "
               "default PERDNN_THREADS or hardware)\n");
  return 2;
}

DnnModel model_by_name(const std::string& name) {
  if (name == "mobilenet") return build_mobilenet_v1();
  if (name == "inception") return build_inception21k();
  if (name == "resnet") return build_resnet50();
  if (name == "alexnet") return build_alexnet();
  if (name == "vgg16") return build_vgg16();
  throw std::runtime_error("unknown model '" + name + "'");
}

int cmd_models() {
  TextTable table({"model", "layers", "MB", "GFLOPs", "client s", "server s"});
  for (const char* name :
       {"mobilenet", "inception", "resnet", "alexnet", "vgg16"}) {
    const DnnModel model = model_by_name(name);
    table.add_row(
        {model.name(),
         TextTable::num(static_cast<long long>(model.num_layers())),
         TextTable::num(bytes_to_mb(model.total_weight_bytes()), 1),
         TextTable::num(model.total_flops() / 1e9, 2),
         TextTable::num(total_client_time(
                            profile_on_client(model, odroid_xu4_profile())),
                        3),
         TextTable::num(total_client_time(
                            profile_on_client(model, titan_xp_profile())),
                        3)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_partition(int argc, char** argv) {
  if (argc < 1) return usage();
  const DnnModel model = model_by_name(argv[0]);
  const int load = argc > 1 ? std::atoi(argv[1]) : 1;
  const double uplink = argc > 2 ? std::atof(argv[2]) : 35.0;
  if (load < 1 || uplink <= 0.0) return usage();

  const DnnProfile client = profile_on_client(model, odroid_xu4_profile());
  const GpuContentionModel gpu(titan_xp_profile());
  PartitionContext context;
  context.model = &model;
  context.client_profile = &client;
  context.net.uplink_bytes_per_sec = mbps_to_bytes_per_sec(uplink);
  context.net.downlink_bytes_per_sec =
      mbps_to_bytes_per_sec(uplink * 50.0 / 35.0);
  for (LayerId id = 0; id < model.num_layers(); ++id)
    context.server_time.push_back(gpu.expected_layer_time(
        model.layer(id), model.input_bytes(id), static_cast<double>(load)));

  const PartitionPlan plan = compute_best_plan(context);
  std::printf("%s @ %d concurrent clients, %.0f Mbps uplink\n",
              model.name().c_str(), load, uplink);
  std::printf("  local latency:   %.3f s\n", local_only_latency(context));
  std::printf("  plan latency:    %.3f s (%.1fx)\n", plan.latency,
              local_only_latency(context) / plan.latency);
  std::printf("  server layers:   %d / %d (%.1f MB to deploy)\n",
              plan.num_server_layers(), model.num_layers(),
              bytes_to_mb(plan.server_bytes(model)));
  const UploadSchedule schedule = plan_upload_order(
      context, plan, {.enumeration = UploadEnumeration::kAnchored});
  std::printf("  upload duration: %.1f s at this uplink\n",
              static_cast<double>(schedule.total_bytes()) /
                  context.net.uplink_bytes_per_sec);
  const EnergyProfile energy = odroid_energy_profile();
  std::printf("  client energy:   %.2f J/query (local %.2f J)\n",
              plan_energy_joules(context, plan, energy),
              local_only_latency(context) * energy.compute_watts);
  return 0;
}

std::vector<Trajectory> make_traces(const std::string& kind, int users,
                                    double minutes, std::uint64_t seed) {
  if (kind == "campus") {
    CampusTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_campus_traces(config);
  }
  if (kind == "urban") {
    UrbanTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_urban_traces(config);
  }
  return load_traces_file(kind);  // treat as a file path
}

int cmd_traces(int argc, char** argv) {
  if (argc < 2) return usage();
  const int users = argc > 2 ? std::atoi(argv[2]) : 0;
  const double minutes = argc > 3 ? std::atof(argv[3]) : 120.0;
  const auto traces = make_traces(argv[0], users, minutes, 1);
  save_traces_file(traces, argv[1]);
  std::printf("wrote %zu trajectories (%.1f min at %.0f s sampling, mean "
              "speed %.2f m/s) to %s\n",
              traces.size(), minutes, traces.front().interval,
              mean_speed(traces), argv[1]);
  return 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Writes `text` to `path`, throwing on I/O failure.
void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error("error writing " + path);
}

struct SimulateArgs {
  ModelName model = ModelName::kInception;
  std::string traces;
  MigrationPolicy policy = MigrationPolicy::kProactive;
  std::string timeseries_out;
  std::string metrics_out;
  std::string metrics_prom_out;  // Prometheus text exposition format
  std::string journal_out;       // JSONL, or binary when it ends in .jnl
  std::string trace_out;
  std::string fault_plan_file;
  double failure_rate = 0.0;
  int downtime = 3;
  int users = 0;          // 0 = trace-kind default
  double minutes = 120.0;
  int seed = 42;          // SimulationConfig::seed
  std::string snapshot_save;
  std::string snapshot_resume;
  int snapshot_every = 0;
  int snapshot_at = -1;
  std::string sim_metrics_out;  // deterministic SimulationMetrics JSON
};

/// Strict numeric parses: the whole token must be consumed.
bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& text, int* out) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

/// Strict parser for `simulate`: positional model/traces/[policy] plus the
/// observability flags (either `--flag value` or `--flag=value`). Returns
/// nullopt after printing the offending token to stderr.
std::optional<SimulateArgs> parse_simulate_args(int argc, char** argv) {
  SimulateArgs args;
  std::vector<std::string> positional;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg;
      std::string value;
      bool have_value = false;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
        have_value = true;
      } else if (i + 1 < argc) {
        value = argv[++i];
        have_value = true;
      }
      double* double_target = nullptr;
      int* int_target = nullptr;
      if (name == "--failure-rate") double_target = &args.failure_rate;
      else if (name == "--minutes") double_target = &args.minutes;
      else if (name == "--downtime") int_target = &args.downtime;
      else if (name == "--users") int_target = &args.users;
      else if (name == "--seed") int_target = &args.seed;
      else if (name == "--snapshot-every") int_target = &args.snapshot_every;
      else if (name == "--snapshot-at") int_target = &args.snapshot_at;
      if (double_target != nullptr || int_target != nullptr) {
        if (!have_value || value.empty()) {
          std::fprintf(stderr, "error: flag '%s' needs a numeric argument\n",
                       name.c_str());
          return std::nullopt;
        }
        const bool ok = double_target != nullptr
                            ? parse_double(value, double_target)
                            : parse_int(value, int_target);
        if (!ok) {
          std::fprintf(stderr, "error: flag '%s' got non-numeric value '%s'\n",
                       name.c_str(), value.c_str());
          return std::nullopt;
        }
        continue;
      }
      std::string* target = nullptr;
      if (name == "--timeseries-out") target = &args.timeseries_out;
      else if (name == "--metrics-out") target = &args.metrics_out;
      else if (name == "--metrics-prom-out") target = &args.metrics_prom_out;
      else if (name == "--journal-out") target = &args.journal_out;
      else if (name == "--trace-out") target = &args.trace_out;
      else if (name == "--fault-plan") target = &args.fault_plan_file;
      else if (name == "--snapshot-save") target = &args.snapshot_save;
      else if (name == "--snapshot-resume") target = &args.snapshot_resume;
      else if (name == "--sim-metrics-out") target = &args.sim_metrics_out;
      if (target == nullptr) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", name.c_str());
        return std::nullopt;
      }
      if (!have_value || value.empty()) {
        std::fprintf(stderr, "error: flag '%s' needs a file argument\n",
                     name.c_str());
        return std::nullopt;
      }
      *target = value;
      continue;
    }
    positional.push_back(std::move(arg));
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "error: simulate needs <model> <traces> [policy]\n");
    return std::nullopt;
  }
  const std::string& model = positional[0];
  if (model == "mobilenet") args.model = ModelName::kMobileNet;
  else if (model == "inception") args.model = ModelName::kInception;
  else if (model == "resnet") args.model = ModelName::kResNet;
  else {
    std::fprintf(stderr,
                 "error: unknown model '%s' (simulate supports "
                 "mobilenet|inception|resnet)\n",
                 model.c_str());
    return std::nullopt;
  }
  args.traces = positional[1];
  if (positional.size() > 2) {
    const std::string& policy = positional[2];
    if (policy == "ionn") args.policy = MigrationPolicy::kNone;
    else if (policy == "perdnn") args.policy = MigrationPolicy::kProactive;
    else if (policy == "optimal") args.policy = MigrationPolicy::kOptimal;
    else {
      std::fprintf(stderr,
                   "error: unknown policy '%s' (expected "
                   "ionn|perdnn|optimal)\n",
                   policy.c_str());
      return std::nullopt;
    }
  }
  if (!args.fault_plan_file.empty() && args.failure_rate != 0.0) {
    std::fprintf(stderr,
                 "error: --fault-plan and --failure-rate are mutually "
                 "exclusive\n");
    return std::nullopt;
  }
  if (args.failure_rate < 0.0 || args.failure_rate > 1.0) {
    std::fprintf(stderr,
                 "error: --failure-rate must be a probability in [0, 1] "
                 "(got %g)\n",
                 args.failure_rate);
    return std::nullopt;
  }
  if (args.downtime < 1) {
    std::fprintf(stderr, "error: --downtime must be >= 1 (got %d)\n",
                 args.downtime);
    return std::nullopt;
  }
  return args;
}

int cmd_simulate(int argc, char** argv) {
  const std::optional<SimulateArgs> parsed = parse_simulate_args(argc, argv);
  if (!parsed) return 2;

  if ((parsed->snapshot_every > 0 || parsed->snapshot_at >= 0) &&
      parsed->snapshot_save.empty()) {
    std::fprintf(stderr, "error: --snapshot-every/--snapshot-at require "
                         "--snapshot-save FILE\n");
    return 2;
  }

  SimulationConfig config;
  config.model = parsed->model;
  config.policy = parsed->policy;
  config.migration_radius_m = 100.0;
  config.server_failure_rate = parsed->failure_rate;
  config.server_downtime_intervals = parsed->downtime;
  config.seed = static_cast<std::uint64_t>(parsed->seed);
  if (!parsed->fault_plan_file.empty()) {
    std::ifstream in(parsed->fault_plan_file);
    if (!in)
      throw std::runtime_error("cannot open " + parsed->fault_plan_file);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    config.fault_plan = FaultPlan::from_json(text);
    std::printf("fault plan: %zu scripted events from %s\n",
                config.fault_plan.size(), parsed->fault_plan_file.c_str());
  }

  if (!parsed->metrics_out.empty() || !parsed->metrics_prom_out.empty()) {
    obs::Registry::global().reset();
    obs::set_enabled(true);
  }
  if (!parsed->trace_out.empty()) obs::Tracer::global().start();

  // Load any resume snapshot before the (expensive) world build so a
  // corrupt file fails fast with exit 2.
  snapshot::SimSnapshot resume_snapshot;
  bool resuming = false;
  if (!parsed->snapshot_resume.empty()) {
    try {
      resume_snapshot = snapshot::load(parsed->snapshot_resume);
      resuming = true;
    } catch (const snapshot::SnapshotError& e) {
      std::fprintf(stderr, "error: bad snapshot %s: %s\n",
                   parsed->snapshot_resume.c_str(), e.what());
      return 2;
    }
    std::printf("resuming from %s at interval %d\n",
                parsed->snapshot_resume.c_str(), resume_snapshot.next_interval);
  }

  const auto test = make_traces(parsed->traces, parsed->users,
                                parsed->minutes, 22);
  const auto train = make_traces(parsed->traces, parsed->users,
                                 parsed->minutes, 11);
  const SimulationWorld world = build_world(config, train, test);

  // Record the timeseries whenever we may write a checkpoint: the snapshot
  // carries the row prefix so a resumed run can emit the full series.
  obs::SimTimeseries timeseries;
  obs::SimTimeseries* recorder =
      parsed->timeseries_out.empty() && parsed->snapshot_save.empty()
          ? nullptr
          : &timeseries;
  if (recorder != nullptr)
    recorder->set_model(model_name_str(parsed->model));
  // Like the timeseries: journal whenever a checkpoint may be written, so
  // the snapshot carries the event prefix for byte-identical resumes.
  obs::Journal journal;
  obs::Journal* journal_recorder =
      parsed->journal_out.empty() && parsed->snapshot_save.empty()
          ? nullptr
          : &journal;

  SimulationRunOptions run_options;
  if (resuming) run_options.resume_from = &resume_snapshot;
  run_options.checkpoint_every = parsed->snapshot_every;
  run_options.stop_after_interval = parsed->snapshot_at;
  run_options.checkpoint_path = parsed->snapshot_save;
  run_options.journal = journal_recorder;

  SimulationMetrics metrics;
  try {
    metrics = run_simulation(config, world, recorder, run_options);
  } catch (const snapshot::SnapshotError& e) {
    std::fprintf(stderr, "error: snapshot: %s\n", e.what());
    return 2;
  }

  if (parsed->snapshot_at >= 0) {
    std::printf("checkpoint saved: %s (stopped after interval %d)\n",
                parsed->snapshot_save.c_str(), parsed->snapshot_at);
    return 0;  // partial run: outputs come from the resumed run
  }

  std::printf("%d servers, %d clients, %d intervals\n", metrics.num_servers,
              metrics.num_clients, metrics.num_intervals);
  std::printf("cold-window queries: %lld   hit ratio: %.1f%%   server "
              "changes: %d\n",
              metrics.cold_window_queries, metrics.hit_ratio() * 100.0,
              metrics.server_changes);
  std::printf("migrated: %.0f MB   peak backhaul uplink: %.0f Mbps\n",
              bytes_to_mb(metrics.total_migrated_bytes),
              metrics.peak_uplink_mbps);
  if (!config.fault_plan.empty() || config.server_failure_rate > 0.0) {
    std::printf("faults: %d crashes, %d evictions, %d disconnects   "
                "availability: %.1f%%   offloaded: %.1f%%\n",
                metrics.server_failures, metrics.failure_evictions,
                metrics.client_disconnect_events,
                metrics.availability() * 100.0,
                metrics.offload_ratio() * 100.0);
    std::printf("local fallback queries: %lld   migrations deferred: %d "
                "(%.0f MB, %d retries, %d abandoned)\n",
                metrics.local_fallback_queries, metrics.migrations_deferred,
                bytes_to_mb(metrics.deferred_migration_bytes),
                metrics.migration_retries, metrics.migrations_abandoned);
  }

  if (recorder != nullptr && !parsed->timeseries_out.empty()) {
    std::ofstream out(parsed->timeseries_out);
    if (!out)
      throw std::runtime_error("cannot open " + parsed->timeseries_out);
    if (ends_with(parsed->timeseries_out, ".json"))
      recorder->write_json(out);
    else
      recorder->write_csv(out);
    if (!out) throw std::runtime_error("error writing " +
                                       parsed->timeseries_out);
    std::printf("timeseries: %d intervals x %d servers -> %s\n",
                recorder->num_intervals(), recorder->num_servers(),
                parsed->timeseries_out.c_str());
  }
  if (!parsed->metrics_out.empty()) {
    write_file(parsed->metrics_out, obs::Registry::global().to_json());
    std::printf("metrics: %s\n", parsed->metrics_out.c_str());
  }
  if (!parsed->metrics_prom_out.empty()) {
    write_file(parsed->metrics_prom_out,
               obs::Registry::global().to_prometheus());
    std::printf("metrics (prometheus): %s\n",
                parsed->metrics_prom_out.c_str());
  }
  if (journal_recorder != nullptr && !parsed->journal_out.empty()) {
    if (ends_with(parsed->journal_out, ".jnl")) {
      std::ofstream out(parsed->journal_out, std::ios::binary);
      if (!out) throw std::runtime_error("cannot open " + parsed->journal_out);
      const std::string bytes = journal_recorder->encode();
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out)
        throw std::runtime_error("error writing " + parsed->journal_out);
    } else {
      std::ofstream out(parsed->journal_out);
      if (!out) throw std::runtime_error("cannot open " + parsed->journal_out);
      journal_recorder->write_jsonl(out);
      if (!out)
        throw std::runtime_error("error writing " + parsed->journal_out);
    }
    std::printf("journal: %zu events (%llu dropped) -> %s\n",
                journal_recorder->size(),
                static_cast<unsigned long long>(journal_recorder->dropped()),
                parsed->journal_out.c_str());
  }
  if (!parsed->sim_metrics_out.empty()) {
    write_file(parsed->sim_metrics_out, snapshot::metrics_to_json(metrics));
    std::printf("sim metrics: %s\n", parsed->sim_metrics_out.c_str());
  }
  if (!parsed->trace_out.empty()) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.stop();
    write_file(parsed->trace_out, tracer.to_chrome_json());
    std::printf("trace: %zu spans -> %s (load in chrome://tracing)\n",
                tracer.num_events(), parsed->trace_out.c_str());
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 2) return usage();
  const DnnModel model = model_by_name(argv[0]);
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(1));
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  const auto records = profiler.profile_models(models, config);
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  save_records(records, out);
  std::printf("wrote %zu profiling records (1..%d clients) to %s\n",
              records.size(), config.max_clients, argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --threads N / --threads=N (any position) and size the pool.
  argc = par::init_threads_from_cli(argc, argv);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "models") return cmd_models();
    if (command == "partition") return cmd_partition(argc - 2, argv + 2);
    if (command == "traces") return cmd_traces(argc - 2, argv + 2);
    if (command == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (command == "profile") return cmd_profile(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return usage();
}
