// perdnn — command-line front end for the library.
//
//   perdnn models
//       List the model zoo with sizes, FLOPs and device latencies.
//   perdnn partition <model> [load] [uplink_mbps]
//       Print the partitioning plan for a client/server pair.
//   perdnn traces <campus|urban> <out.txt> [users] [minutes]
//       Generate a synthetic mobility dataset and save it.
//   perdnn simulate <model> <campus|urban|traces.txt> [ionn|perdnn|optimal]
//       Run the smart-city simulation and print the summary.
//   perdnn profile <model> <out.txt>
//       Run the concurrency sweep and save estimator-training records.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/table.hpp"
#include "core/perdnn.hpp"
#include "mobility/trace_gen.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  perdnn models\n"
               "  perdnn partition <mobilenet|inception|resnet|alexnet|vgg16> "
               "[load] [uplink_mbps]\n"
               "  perdnn traces <campus|urban> <out.txt> [users] [minutes]\n"
               "  perdnn simulate <model> <campus|urban|traces.txt> "
               "[ionn|perdnn|optimal]\n"
               "  perdnn profile <model> <out.txt>\n");
  return 2;
}

DnnModel model_by_name(const std::string& name) {
  if (name == "mobilenet") return build_mobilenet_v1();
  if (name == "inception") return build_inception21k();
  if (name == "resnet") return build_resnet50();
  if (name == "alexnet") return build_alexnet();
  if (name == "vgg16") return build_vgg16();
  throw std::runtime_error("unknown model '" + name + "'");
}

int cmd_models() {
  TextTable table({"model", "layers", "MB", "GFLOPs", "client s", "server s"});
  for (const char* name :
       {"mobilenet", "inception", "resnet", "alexnet", "vgg16"}) {
    const DnnModel model = model_by_name(name);
    table.add_row(
        {model.name(),
         TextTable::num(static_cast<long long>(model.num_layers())),
         TextTable::num(bytes_to_mb(model.total_weight_bytes()), 1),
         TextTable::num(model.total_flops() / 1e9, 2),
         TextTable::num(total_client_time(
                            profile_on_client(model, odroid_xu4_profile())),
                        3),
         TextTable::num(total_client_time(
                            profile_on_client(model, titan_xp_profile())),
                        3)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_partition(int argc, char** argv) {
  if (argc < 1) return usage();
  const DnnModel model = model_by_name(argv[0]);
  const int load = argc > 1 ? std::atoi(argv[1]) : 1;
  const double uplink = argc > 2 ? std::atof(argv[2]) : 35.0;
  if (load < 1 || uplink <= 0.0) return usage();

  const DnnProfile client = profile_on_client(model, odroid_xu4_profile());
  const GpuContentionModel gpu(titan_xp_profile());
  PartitionContext context;
  context.model = &model;
  context.client_profile = &client;
  context.net.uplink_bytes_per_sec = mbps_to_bytes_per_sec(uplink);
  context.net.downlink_bytes_per_sec =
      mbps_to_bytes_per_sec(uplink * 50.0 / 35.0);
  for (LayerId id = 0; id < model.num_layers(); ++id)
    context.server_time.push_back(gpu.expected_layer_time(
        model.layer(id), model.input_bytes(id), static_cast<double>(load)));

  const PartitionPlan plan = compute_best_plan(context);
  std::printf("%s @ %d concurrent clients, %.0f Mbps uplink\n",
              model.name().c_str(), load, uplink);
  std::printf("  local latency:   %.3f s\n", local_only_latency(context));
  std::printf("  plan latency:    %.3f s (%.1fx)\n", plan.latency,
              local_only_latency(context) / plan.latency);
  std::printf("  server layers:   %d / %d (%.1f MB to deploy)\n",
              plan.num_server_layers(), model.num_layers(),
              bytes_to_mb(plan.server_bytes(model)));
  const UploadSchedule schedule = plan_upload_order(
      context, plan, {.enumeration = UploadEnumeration::kAnchored});
  std::printf("  upload duration: %.1f s at this uplink\n",
              static_cast<double>(schedule.total_bytes()) /
                  context.net.uplink_bytes_per_sec);
  const EnergyProfile energy = odroid_energy_profile();
  std::printf("  client energy:   %.2f J/query (local %.2f J)\n",
              plan_energy_joules(context, plan, energy),
              local_only_latency(context) * energy.compute_watts);
  return 0;
}

std::vector<Trajectory> make_traces(const std::string& kind, int users,
                                    double minutes, std::uint64_t seed) {
  if (kind == "campus") {
    CampusTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_campus_traces(config);
  }
  if (kind == "urban") {
    UrbanTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_urban_traces(config);
  }
  return load_traces_file(kind);  // treat as a file path
}

int cmd_traces(int argc, char** argv) {
  if (argc < 2) return usage();
  const int users = argc > 2 ? std::atoi(argv[2]) : 0;
  const double minutes = argc > 3 ? std::atof(argv[3]) : 120.0;
  const auto traces = make_traces(argv[0], users, minutes, 1);
  save_traces_file(traces, argv[1]);
  std::printf("wrote %zu trajectories (%.1f min at %.0f s sampling, mean "
              "speed %.2f m/s) to %s\n",
              traces.size(), minutes, traces.front().interval,
              mean_speed(traces), argv[1]);
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  SimulationConfig config;
  const std::string model_name = argv[0];
  config.model = model_name == "mobilenet"  ? ModelName::kMobileNet
                 : model_name == "resnet"   ? ModelName::kResNet
                                            : ModelName::kInception;
  if (argc > 2) {
    const std::string policy = argv[2];
    config.policy = policy == "ionn"      ? MigrationPolicy::kNone
                    : policy == "optimal" ? MigrationPolicy::kOptimal
                                          : MigrationPolicy::kProactive;
  }
  config.migration_radius_m = 100.0;

  const auto test = make_traces(argv[1], 0, 120.0, 22);
  const auto train = make_traces(argv[1], 0, 120.0, 11);
  const SimulationWorld world = build_world(config, train, test);
  const SimulationMetrics metrics = run_simulation(config, world);

  std::printf("%d servers, %d clients, %d intervals\n", metrics.num_servers,
              metrics.num_clients, metrics.num_intervals);
  std::printf("cold-window queries: %lld   hit ratio: %.1f%%   server "
              "changes: %d\n",
              metrics.cold_window_queries, metrics.hit_ratio() * 100.0,
              metrics.server_changes);
  std::printf("migrated: %.0f MB   peak backhaul uplink: %.0f Mbps\n",
              bytes_to_mb(metrics.total_migrated_bytes),
              metrics.peak_uplink_mbps);
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 2) return usage();
  const DnnModel model = model_by_name(argv[0]);
  const GpuContentionModel gpu(titan_xp_profile());
  ConcurrencyProfiler profiler(&gpu, Rng(1));
  const DnnModel* models[] = {&model};
  ProfilerConfig config;
  const auto records = profiler.profile_models(models, config);
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  save_records(records, out);
  std::printf("wrote %zu profiling records (1..%d clients) to %s\n",
              records.size(), config.max_clients, argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "models") return cmd_models();
    if (command == "partition") return cmd_partition(argc - 2, argv + 2);
    if (command == "traces") return cmd_traces(argc - 2, argv + 2);
    if (command == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (command == "profile") return cmd_profile(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
