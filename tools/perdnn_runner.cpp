// perdnn_runner — sharded scenario sweeps with checkpoint/resume.
//
//   perdnn_runner run <manifest.json> <out_dir> [--workers N]
//       Expand the manifest's policies x seeds x fault_intensities grid into
//       shards, fan them out across N forked worker processes (default 2),
//       and merge the per-shard outputs once every shard is done. Shards
//       whose metrics file already exists are skipped; shards with a
//       checkpoint resume from it, so re-running after a crash or kill
//       completes only the remaining work and reproduces the exact outputs
//       of an uninterrupted sweep.
//   perdnn_runner worker <manifest.json> <out_dir> <index> <count>
//       Run the shards assigned to worker `index` of `count` in-process
//       (what `run` forks internally; exposed for debugging).
//   perdnn_runner status <manifest.json> <out_dir>
//       Print per-shard progress: done / checkpointed / pending.
//   perdnn_runner merge <manifest.json> <out_dir>
//       Merge completed shard outputs into merged_metrics.json and
//       merged_timeseries.csv. Fails if any shard is incomplete.
//   perdnn_runner inspect <file.ckpt>
//       Validate and summarise a checkpoint. Corrupt, truncated or
//       version-mismatched files exit 2 (never crash).
//
// Per-shard files in <out_dir>:
//   shard_NNN.ckpt            checkpoint (deleted once the shard finishes)
//   shard_NNN.metrics.json    deterministic SimulationMetrics (done marker)
//   shard_NNN.timeseries.csv  per-interval per-server rows
//   shard_NNN.journal.jsonl   event journal (manifest "journal": true only)
// All files are written atomically (tmp + rename), so a kill can never
// leave a half-written done-marker or checkpoint behind. Journal state
// rides inside the checkpoint, so a killed-and-resumed shard produces a
// journal byte-identical to an uninterrupted run's.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/perdnn.hpp"
#include "mobility/trace_gen.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace perdnn;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  perdnn_runner run <manifest.json> <out_dir> [--workers N]\n"
               "  perdnn_runner worker <manifest.json> <out_dir> <index> "
               "<count>\n"
               "  perdnn_runner status <manifest.json> <out_dir>\n"
               "  perdnn_runner merge <manifest.json> <out_dir>\n"
               "  perdnn_runner inspect <file.ckpt>\n");
  return 2;
}

// ---------------------------------------------------------------------------
// Manifest

struct Manifest {
  std::string model = "inception";
  std::string trace = "campus";
  int users = 0;  // 0 = trace-kind default
  double minutes = 120.0;
  int checkpoint_every = 4;
  int downtime = 3;
  long long cache_budget_bytes = 0;  // 0 = unbudgeted caches
  bool journal = false;  // record per-shard event journals
  std::vector<std::string> policies;
  std::vector<int> seeds;
  std::vector<double> fault_intensities;
};

struct Shard {
  int index = 0;
  std::string policy;
  int seed = 0;
  double fault_intensity = 0.0;

  std::string name() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "shard_%03d", index);
    return buf;
  }
};

ModelName model_by_name(const std::string& name) {
  if (name == "mobilenet") return ModelName::kMobileNet;
  if (name == "inception") return ModelName::kInception;
  if (name == "resnet") return ModelName::kResNet;
  throw std::runtime_error("manifest: unknown model '" + name + "'");
}

MigrationPolicy policy_by_name(const std::string& name) {
  if (name == "ionn") return MigrationPolicy::kNone;
  if (name == "perdnn") return MigrationPolicy::kProactive;
  if (name == "optimal") return MigrationPolicy::kOptimal;
  throw std::runtime_error("manifest: unknown policy '" + name + "'");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Atomic write: a reader either sees the complete file or no file.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("error writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path);
  }
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("cannot create directory " + path + ": " +
                           std::strerror(errno));
}

double require_number(const obs::JsonValue& doc, const std::string& key) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kNumber)
    throw std::runtime_error("manifest: missing numeric field '" + key + "'");
  return v->as_number();
}

Manifest parse_manifest(const std::string& path) {
  const obs::JsonValue doc = obs::parse_json(read_file(path));
  if (!doc.is_object()) throw std::runtime_error("manifest: not an object");
  Manifest m;
  if (const auto* v = doc.find("model")) m.model = v->as_string();
  if (const auto* v = doc.find("trace")) m.trace = v->as_string();
  if (doc.find("users")) m.users = static_cast<int>(require_number(doc, "users"));
  if (doc.find("minutes")) m.minutes = require_number(doc, "minutes");
  if (doc.find("checkpoint_every"))
    m.checkpoint_every = static_cast<int>(require_number(doc, "checkpoint_every"));
  if (doc.find("downtime"))
    m.downtime = static_cast<int>(require_number(doc, "downtime"));
  if (doc.find("cache_budget_bytes"))
    m.cache_budget_bytes =
        static_cast<long long>(require_number(doc, "cache_budget_bytes"));
  if (const auto* v = doc.find("journal")) m.journal = v->as_bool();

  const obs::JsonValue* policies = doc.find("policies");
  if (policies == nullptr || !policies->is_array() || policies->items().empty())
    throw std::runtime_error("manifest: 'policies' must be a non-empty array");
  for (const auto& p : policies->items()) {
    policy_by_name(p.as_string());  // validate early
    m.policies.push_back(p.as_string());
  }
  const obs::JsonValue* seeds = doc.find("seeds");
  if (seeds == nullptr || !seeds->is_array() || seeds->items().empty())
    throw std::runtime_error("manifest: 'seeds' must be a non-empty array");
  for (const auto& s : seeds->items())
    m.seeds.push_back(static_cast<int>(s.as_number()));
  if (const obs::JsonValue* fi = doc.find("fault_intensities")) {
    if (!fi->is_array())
      throw std::runtime_error("manifest: 'fault_intensities' must be an array");
    for (const auto& f : fi->items())
      m.fault_intensities.push_back(f.as_number());
  }
  if (m.fault_intensities.empty()) m.fault_intensities.push_back(0.0);
  model_by_name(m.model);  // validate early
  return m;
}

std::vector<Shard> expand_shards(const Manifest& m) {
  std::vector<Shard> shards;
  for (const std::string& policy : m.policies)
    for (int seed : m.seeds)
      for (double intensity : m.fault_intensities) {
        Shard s;
        s.index = static_cast<int>(shards.size());
        s.policy = policy;
        s.seed = seed;
        s.fault_intensity = intensity;
        shards.push_back(std::move(s));
      }
  return shards;
}

std::string ckpt_path(const std::string& out_dir, const Shard& s) {
  return out_dir + "/" + s.name() + ".ckpt";
}
std::string metrics_path(const std::string& out_dir, const Shard& s) {
  return out_dir + "/" + s.name() + ".metrics.json";
}
std::string timeseries_path(const std::string& out_dir, const Shard& s) {
  return out_dir + "/" + s.name() + ".timeseries.csv";
}
std::string journal_path(const std::string& out_dir, const Shard& s) {
  return out_dir + "/" + s.name() + ".journal.jsonl";
}
std::string stats_path(const std::string& out_dir, const Shard& s) {
  return out_dir + "/" + s.name() + ".stats.json";
}

std::optional<long long> file_size(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<long long>(st.st_size);
}

// ---------------------------------------------------------------------------
// Shard execution

std::vector<Trajectory> make_traces(const std::string& kind, int users,
                                    double minutes, std::uint64_t seed) {
  if (kind == "campus") {
    CampusTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_campus_traces(config);
  }
  if (kind == "urban") {
    UrbanTraceConfig config;
    if (users > 0) config.num_users = users;
    config.duration = minutes * 60.0;
    config.sample_interval = 20.0;
    config.seed = seed;
    return generate_urban_traces(config);
  }
  return load_traces_file(kind);  // treat as a file path
}

void run_shard(const Manifest& m, const Shard& shard,
               const std::string& out_dir) {
  const std::string ckpt = ckpt_path(out_dir, shard);

  SimulationConfig config;
  config.model = model_by_name(m.model);
  config.policy = policy_by_name(shard.policy);
  config.migration_radius_m = 100.0;
  config.seed = static_cast<std::uint64_t>(shard.seed);
  config.server_failure_rate = shard.fault_intensity;
  config.server_downtime_intervals = m.downtime;
  config.cache_budget_bytes = m.cache_budget_bytes;

  // A stale or corrupt checkpoint (scenario changed under it, torn file
  // copied in from elsewhere) is discarded with a warning: the shard is
  // always recomputable from the manifest alone.
  snapshot::SimSnapshot resume;
  bool resuming = false;
  if (file_exists(ckpt)) {
    try {
      resume = snapshot::load(ckpt);
      resuming = true;
    } catch (const snapshot::SnapshotError& e) {
      std::fprintf(stderr, "[%s] discarding unusable checkpoint: %s\n",
                   shard.name().c_str(), e.what());
      std::remove(ckpt.c_str());
    }
  }

  const auto test = make_traces(m.trace, m.users, m.minutes, 22);
  const auto train = make_traces(m.trace, m.users, m.minutes, 11);
  const SimulationWorld world = build_world(config, train, test);

  obs::SimTimeseries timeseries;
  timeseries.set_model(m.model);
  obs::Journal journal;
  SimulationRunOptions options;
  if (resuming) options.resume_from = &resume;
  options.checkpoint_every = m.checkpoint_every;
  options.checkpoint_path = ckpt;
  if (m.journal) options.journal = &journal;

  SimulationMetrics metrics;
  try {
    metrics = run_simulation(config, world, &timeseries, options);
  } catch (const snapshot::SnapshotError& e) {
    // Fingerprint mismatch: the checkpoint belongs to a different scenario
    // (manifest edited between runs). Recompute from scratch.
    std::fprintf(stderr, "[%s] checkpoint rejected (%s); restarting shard\n",
                 shard.name().c_str(), e.what());
    std::remove(ckpt.c_str());
    // run_simulation() restarts the recorder via start(), which resets it;
    // the journal has no equivalent hook, so clear it explicitly.
    journal.clear();
    resuming = false;  // the stats sidecar reports what actually happened
    SimulationRunOptions fresh = options;
    fresh.resume_from = nullptr;
    metrics = run_simulation(config, world, &timeseries, fresh);
  }

  std::string csv;
  {
    std::ostringstream out;
    timeseries.write_csv(out);
    csv = out.str();
  }
  write_file_atomic(timeseries_path(out_dir, shard), csv);
  if (m.journal) {
    std::ostringstream out;
    journal.write_jsonl(out);
    write_file_atomic(journal_path(out_dir, shard), out.str());
  }
  // Resource sidecar for `status`: what this shard cost and streamed. The
  // RSS is the worker process's peak — an upper bound when one worker runs
  // several shards, but exact for the usual one-big-shard-per-worker case.
  std::string stats = "{\"peak_rss_bytes\":" +
                      std::to_string(obs::peak_rss_bytes()) +
                      ",\"timeseries_rows\":" +
                      std::to_string(timeseries.rows().size()) +
                      ",\"journal_events\":" +
                      std::to_string(m.journal ? journal.size() : 0) +
                      ",\"resumed\":" + (resuming ? "true" : "false") + "}\n";
  write_file_atomic(stats_path(out_dir, shard), stats);
  // The metrics file is the done-marker, so it lands last.
  write_file_atomic(metrics_path(out_dir, shard),
                    snapshot::metrics_to_json(metrics));
  std::remove(ckpt.c_str());
}

int worker_main(const Manifest& m, const std::string& out_dir, int index,
                int count) {
  ensure_dir(out_dir);
  const std::vector<Shard> shards = expand_shards(m);
  int ran = 0, skipped = 0;
  for (const Shard& shard : shards) {
    if (shard.index % count != index) continue;
    if (file_exists(metrics_path(out_dir, shard))) {
      ++skipped;
      continue;
    }
    const bool resumed = file_exists(ckpt_path(out_dir, shard));
    run_shard(m, shard, out_dir);
    std::printf("[worker %d] %s done (policy=%s seed=%d fault=%s%s)\n", index,
                shard.name().c_str(), shard.policy.c_str(), shard.seed,
                obs::json_number(shard.fault_intensity).c_str(),
                resumed ? ", resumed" : "");
    std::fflush(stdout);
    ++ran;
  }
  std::printf("[worker %d] finished: %d shard(s) run, %d already done\n",
              index, ran, skipped);
  return 0;
}

// ---------------------------------------------------------------------------
// Merge

int cmd_merge(const Manifest& m, const std::string& out_dir) {
  const std::vector<Shard> shards = expand_shards(m);
  std::string metrics_json = "{\"shards\":[";
  // Budgeted sweeps record the schema-3 cache columns in every shard CSV,
  // so the merged preamble has to announce the same layout.
  const bool cache_cols = m.cache_budget_bytes > 0;
  std::string csv = "# schema=";
  csv += std::to_string(cache_cols ? obs::SimTimeseries::kCsvCacheSchemaVersion
                                   : obs::SimTimeseries::kCsvSchemaVersion);
  csv += "\n# model=";
  csv += obs::SimTimeseries::csv_quote(m.model);
  csv += "\nshard,policy,seed,fault_intensity,";
  csv += obs::SimTimeseries::csv_header(cache_cols);
  csv += "\n";
  std::string merged_journal;  // shard order == canonical grid order
  bool first = true;
  for (const Shard& shard : shards) {
    const std::string mpath = metrics_path(out_dir, shard);
    if (!file_exists(mpath)) {
      std::fprintf(stderr, "merge: %s incomplete (no %s)\n",
                   shard.name().c_str(), mpath.c_str());
      return 1;
    }
    // Embed the shard's metrics document verbatim: it is already canonical
    // JSON, so the merged file is byte-stable across reruns.
    std::string metrics = read_file(mpath);
    while (!metrics.empty() &&
           (metrics.back() == '\n' || metrics.back() == ' '))
      metrics.pop_back();
    if (!first) metrics_json += ",";
    first = false;
    metrics_json += "{\"shard\":\"" + shard.name() + "\",\"policy\":\"" +
                    shard.policy +
                    "\",\"seed\":" + std::to_string(shard.seed) +
                    ",\"fault_intensity\":" +
                    obs::json_number(shard.fault_intensity) +
                    ",\"metrics\":" + metrics + "}";

    const std::string prefix = shard.name() + "," + shard.policy + "," +
                               std::to_string(shard.seed) + "," +
                               obs::json_number(shard.fault_intensity) + ",";
    const std::string shard_csv = read_file(timeseries_path(out_dir, shard));
    // Skip `# ...` schema/metadata comment lines and the one header line;
    // everything after is data rows.
    bool header_skipped = false;
    size_t pos = 0;
    while (pos < shard_csv.size()) {
      size_t end = shard_csv.find('\n', pos);
      if (end == std::string::npos) end = shard_csv.size();
      if (end > pos) {
        if (shard_csv[pos] == '#') {
          // metadata comment: per-shard only
        } else if (!header_skipped) {
          header_skipped = true;
        } else {
          csv += prefix;
          csv.append(shard_csv, pos, end - pos);
          csv += "\n";
        }
      }
      pos = end + 1;
    }
    if (!header_skipped)
      throw std::runtime_error("malformed timeseries for " + shard.name());

    if (m.journal)
      merged_journal += read_file(journal_path(out_dir, shard));
  }
  metrics_json += "]}\n";
  write_file_atomic(out_dir + "/merged_metrics.json", metrics_json);
  write_file_atomic(out_dir + "/merged_timeseries.csv", csv);
  if (m.journal)
    write_file_atomic(out_dir + "/merged_journal.jsonl", merged_journal);
  std::printf("merged %zu shard(s) -> %s/merged_metrics.json, "
              "%s/merged_timeseries.csv%s\n",
              shards.size(), out_dir.c_str(), out_dir.c_str(),
              m.journal ? ", merged_journal.jsonl" : "");
  return 0;
}

// ---------------------------------------------------------------------------
// Subcommands

int cmd_run(const Manifest& m, const std::string& out_dir, int workers) {
  ensure_dir(out_dir);
  const std::vector<Shard> shards = expand_shards(m);
  const int count =
      std::max(1, std::min(workers, static_cast<int>(shards.size())));
  std::printf("sweep: %zu shard(s) (%zu policies x %zu seeds x %zu fault "
              "intensities), %d worker process(es)\n",
              shards.size(), m.policies.size(), m.seeds.size(),
              m.fault_intensities.size(), count);

  // Fork before any simulation work so no worker inherits a thread pool.
  std::vector<pid_t> pids;
  for (int i = 0; i < count; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      int status = 1;
      try {
        status = worker_main(m, out_dir, i, count);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[worker %d] error: %s\n", i, e.what());
      }
      std::fflush(nullptr);
      _exit(status);
    }
    pids.push_back(pid);
  }

  bool ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "worker pid %d failed (status %d)\n",
                   static_cast<int>(pid), status);
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "sweep incomplete; re-run the same command to resume\n");
    return 1;
  }
  return cmd_merge(m, out_dir);
}

int cmd_status(const Manifest& m, const std::string& out_dir) {
  const std::vector<Shard> shards = expand_shards(m);
  int done = 0, checkpointed = 0, pending = 0;
  for (const Shard& shard : shards) {
    std::string state = "pending";
    std::string resources;
    if (file_exists(metrics_path(out_dir, shard))) {
      state = "done";
      ++done;
      // Resource sidecar written by run_shard: peak RSS and streamed rows.
      // Older output directories predate it, so its absence is not an error.
      try {
        const obs::JsonValue stats =
            obs::parse_json(read_file(stats_path(out_dir, shard)));
        const auto field = [&](const char* key) -> long long {
          const obs::JsonValue* v = stats.find(key);
          return v != nullptr && v->kind() == obs::JsonValue::Kind::kNumber
                     ? static_cast<long long>(v->as_number())
                     : -1;
        };
        const long long rss = field("peak_rss_bytes");
        const long long rows = field("timeseries_rows");
        if (rss >= 0)
          resources += "  rss=" + std::to_string(rss / (1024 * 1024)) + "MiB";
        if (rows >= 0) resources += "  rows=" + std::to_string(rows);
        if (m.journal) {
          const long long events = field("journal_events");
          if (events >= 0)
            resources += "  journal_events=" + std::to_string(events);
        }
      } catch (const std::exception&) {
        // no/unreadable sidecar: just omit the resource columns
      }
    } else if (file_exists(ckpt_path(out_dir, shard))) {
      try {
        const snapshot::SimSnapshot snap =
            snapshot::load(ckpt_path(out_dir, shard));
        state = "checkpointed @ interval " +
                std::to_string(snap.next_interval) + "/" +
                std::to_string(snap.num_intervals);
        // Rows the run had streamed/recorded up to the checkpoint.
        if (snap.has_timeseries)
          resources += "  rows=" + std::to_string(snap.timeseries_rows.size());
      } catch (const snapshot::SnapshotError&) {
        state = "checkpoint unreadable";
      }
      ++checkpointed;
    } else {
      ++pending;
    }
    std::string journal_note;
    if (m.journal) {
      if (const auto size = file_size(journal_path(out_dir, shard)))
        journal_note = "  journal=" + std::to_string(*size) + "B";
      else
        journal_note = "  journal=-";
    }
    std::printf("%s  policy=%-7s seed=%-3d fault=%-5s  %s%s%s\n",
                shard.name().c_str(), shard.policy.c_str(), shard.seed,
                obs::json_number(shard.fault_intensity).c_str(),
                state.c_str(), resources.c_str(), journal_note.c_str());
  }
  std::printf("%d done, %d checkpointed, %d pending of %zu\n", done,
              checkpointed, pending, shards.size());
  return 0;
}

int cmd_inspect(const std::string& path) {
  try {
    const snapshot::SimSnapshot snap = snapshot::load(path);
    std::int64_t cached_entries = 0;
    for (const auto& server : snap.caches)
      cached_entries += static_cast<std::int64_t>(server.size());
    std::printf("%s: valid snapshot (version %u)\n", path.c_str(),
                snapshot::kSnapshotVersion);
    std::printf("  interval:        %d / %d\n", snap.next_interval,
                snap.num_intervals);
    std::printf("  fingerprint:     %016llx\n",
                static_cast<unsigned long long>(snap.config_fingerprint));
    std::printf("  servers:         %zu (%lld cache entries)\n",
                snap.caches.size(),
                static_cast<long long>(cached_entries));
    std::printf("  clients:         %zu\n", snap.clients.size());
    std::printf("  load levels:     %zu base, %zu degraded\n",
                snap.levels.size(), snap.degraded_levels.size());
    std::printf("  deferred queue:  %zu order(s), %lld bytes backlog\n",
                snap.dispatcher.queue.size(),
                static_cast<long long>(snap.dispatcher.backlog_bytes));
    std::printf("  timeseries rows: %zu%s\n", snap.timeseries_rows.size(),
                snap.has_timeseries ? "" : " (not recorded)");
    std::printf("  journal events:  %zu%s\n", snap.journal.events.size(),
                snap.has_journal ? "" : " (not recorded)");
    return 0;
  } catch (const snapshot::SnapshotError& e) {
    std::fprintf(stderr, "%s: rejected: %s\n", path.c_str(), e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "inspect") {
      if (argc != 3) return usage();
      return cmd_inspect(argv[2]);
    }
    if (command == "run") {
      if (argc < 4) return usage();
      int workers = 2;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers" && i + 1 < argc) {
          workers = std::atoi(argv[++i]);
        } else if (arg.rfind("--workers=", 0) == 0) {
          workers = std::atoi(arg.c_str() + 10);
        } else {
          std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
          return 2;
        }
      }
      if (workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return 2;
      }
      return cmd_run(parse_manifest(argv[2]), argv[3], workers);
    }
    if (command == "worker") {
      if (argc != 6) return usage();
      const int index = std::atoi(argv[4]);
      const int count = std::atoi(argv[5]);
      if (count < 1 || index < 0 || index >= count) {
        std::fprintf(stderr, "worker index out of range\n");
        return 2;
      }
      return worker_main(parse_manifest(argv[2]), argv[3], index, count);
    }
    if (command == "status") {
      if (argc != 4) return usage();
      return cmd_status(parse_manifest(argv[2]), argv[3]);
    }
    if (command == "merge") {
      if (argc != 4) return usage();
      return cmd_merge(parse_manifest(argv[2]), argv[3]);
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
