#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer (-DPERDNN_SANITIZE=thread) and runs
# the tests that exercise the parallel runtime under a real thread pool:
# the parallel_for/parallel_map unit tests, the simulator (including the
# 1/2/8-thread determinism gate), and the multi-threaded metrics tests.
#
# A second configuration with -DPERDNN_SIMD=OFF keeps the scalar fallback
# of the batched forest kernels sanitizer-tested: that build contains no
# AVX2 translation unit at all, so the forest/estimator/shard tests run the
# pure scalar paths under TSan.
#
# Usage: tools/check_tsan.sh [build-dir]     (default: build-tsan)
# PERDNN_THREADS is forced to 4 so every parallel region actually fans out.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DPERDNN_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)"

export PERDNN_THREADS=4
# halt_on_error makes any race fail the ctest invocation instead of just
# printing a report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'Parallel|Simulator|Metrics'

# Scalar-fallback leg: same sanitizer, SIMD compiled out.
SCALAR_DIR="${BUILD_DIR}-scalar"
cmake -B "$SCALAR_DIR" -S . -DPERDNN_SANITIZE=thread -DPERDNN_SIMD=OFF
cmake --build "$SCALAR_DIR" -j"$(nproc)" \
  --target test_ml test_estimation test_sim
ctest --test-dir "$SCALAR_DIR" --output-on-failure \
  -R 'FlatForest|Estimator|EstimateCache|ShardDeterminism'

echo "TSan check passed (build dirs: $BUILD_DIR, $SCALAR_DIR)"
