#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer (-DPERDNN_SANITIZE=thread) and runs
# the tests that exercise the parallel runtime under a real thread pool:
# the parallel_for/parallel_map unit tests, the simulator (including the
# 1/2/8-thread determinism gate), and the multi-threaded metrics tests.
#
# Usage: tools/check_tsan.sh [build-dir]     (default: build-tsan)
# PERDNN_THREADS is forced to 4 so every parallel region actually fans out.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DPERDNN_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)"

export PERDNN_THREADS=4
# halt_on_error makes any race fail the ctest invocation instead of just
# printing a report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'Parallel|Simulator|Metrics'

echo "TSan check passed (build dir: $BUILD_DIR)"
