#!/usr/bin/env bash
# Checkpoint/resume byte-identity gate.
#
# Proves, end-to-end through the real binaries, that
#   1. a run checkpointed at interval K and resumed reproduces the
#      uninterrupted run's timeseries CSV and SimulationMetrics JSON
#      byte-for-byte — at 1/2/8 threads, with the fastpath disabled, and
#      under a scripted fault plan;
#   2. a sharded sweep killed mid-flight (SIGKILL to the whole process
#      group) and re-run produces merged outputs byte-identical to an
#      uninterrupted sweep;
#   3. truncated/corrupted/garbage snapshots are *rejected* with exit code
#      2 — never a crash (SIGSEGV/SIGABRT would surface as exit >= 128).
#
# Usage: tools/check_snapshot.sh <perdnn-binary> <perdnn_runner-binary>
# (CMake registers this via -DPERDNN_SNAPSHOT_CHECK=ON.)
set -uo pipefail

PERDNN="${1:?usage: check_snapshot.sh <perdnn-binary> <perdnn_runner-binary>}"
RUNNER="${2:?usage: check_snapshot.sh <perdnn-binary> <perdnn_runner-binary>}"
PERDNN="$(readlink -f "$PERDNN")"
RUNNER="$(readlink -f "$RUNNER")"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

FAIL=0
fail() { echo "FAIL: $*" >&2; FAIL=1; }

SIM_ARGS=(inception campus perdnn --users 14 --minutes 25 --seed 9)
PLAN_FILE="$WORK/plan.json"
cat > "$PLAN_FILE" <<'EOF'
{"events":[
  {"kind":"server_crash","at":3,"duration":4,"server":0},
  {"kind":"backhaul_degrade","at":4,"duration":6,"server":1,"peer":-2,"severity":1.0},
  {"kind":"telemetry_dropout","at":2,"duration":8,"server":2},
  {"kind":"client_disconnect","at":5,"duration":2,"client":0}
]}
EOF

# --- 1. CLI checkpoint/resume byte-identity -------------------------------
for variant in clean faulted; do
  EXTRA=()
  [ "$variant" = faulted ] && EXTRA=(--fault-plan "$PLAN_FILE")
  "$PERDNN" simulate "${SIM_ARGS[@]}" "${EXTRA[@]}" --threads 2 \
    --timeseries-out "full_$variant.csv" \
    --sim-metrics-out "full_$variant.json" > /dev/null \
    || fail "$variant: uninterrupted run failed"
  "$PERDNN" simulate "${SIM_ARGS[@]}" "${EXTRA[@]}" --threads 2 \
    --snapshot-save "$variant.ckpt" --snapshot-at 6 > /dev/null \
    || fail "$variant: checkpoint run failed"
  for resume_opts in "--threads 1" "--threads 2" "--threads 8" \
                     "NOFP --threads 2"; do
    env=()
    opts="$resume_opts"
    if [ "${resume_opts%% *}" = NOFP ]; then
      env=(PERDNN_NO_FASTPATH=1)
      opts="${resume_opts#NOFP }"
    fi
    # shellcheck disable=SC2086
    env "${env[@]}" "$PERDNN" simulate "${SIM_ARGS[@]}" "${EXTRA[@]}" $opts \
      --snapshot-resume "$variant.ckpt" \
      --timeseries-out r.csv --sim-metrics-out r.json > /dev/null \
      || fail "$variant [$resume_opts]: resumed run failed"
    cmp -s "full_$variant.csv" r.csv \
      || fail "$variant [$resume_opts]: resumed timeseries differs"
    cmp -s "full_$variant.json" r.json \
      || fail "$variant [$resume_opts]: resumed metrics differ"
  done
  echo "ok: CLI resume byte-identical ($variant, 1/2/8 threads + no-fastpath)"
done

# Periodic checkpointing must not perturb the run it rides along with.
"$PERDNN" simulate "${SIM_ARGS[@]}" --threads 2 \
  --snapshot-save periodic.ckpt --snapshot-every 4 \
  --timeseries-out periodic.csv --sim-metrics-out periodic.json > /dev/null \
  || fail "periodic checkpoint run failed"
cmp -s full_clean.csv periodic.csv || fail "periodic run timeseries differs"
cmp -s full_clean.json periodic.json || fail "periodic run metrics differ"
echo "ok: periodic checkpointing is output-neutral"

# --- 2. Sharded sweep: kill -9 mid-flight, resume, merge ------------------
cat > manifest.json <<'EOF'
{
  "model": "inception",
  "trace": "campus",
  "users": 12,
  "minutes": 20,
  "checkpoint_every": 3,
  "policies": ["perdnn", "ionn"],
  "seeds": [1, 2],
  "fault_intensities": [0, 0.02]
}
EOF
mkdir sweep_full sweep_killed
"$RUNNER" run manifest.json sweep_full --workers 3 > /dev/null \
  || fail "uninterrupted sweep failed"

setsid "$RUNNER" run manifest.json sweep_killed --workers 3 \
  > /dev/null 2>&1 < /dev/null &
RUNNER_PID=$!
sleep 3
PGID="$(ps -o pgid= "$RUNNER_PID" 2> /dev/null | tr -d ' ' || true)"
if [ -n "$PGID" ]; then
  kill -9 -- "-$PGID" 2> /dev/null
else
  kill -9 "$RUNNER_PID" 2> /dev/null
fi
wait "$RUNNER_PID" 2> /dev/null
"$RUNNER" status manifest.json sweep_killed | tail -1
"$RUNNER" run manifest.json sweep_killed --workers 3 > /dev/null \
  || fail "resumed sweep failed"
cmp -s sweep_full/merged_metrics.json sweep_killed/merged_metrics.json \
  || fail "merged metrics differ after kill/resume"
cmp -s sweep_full/merged_timeseries.csv sweep_killed/merged_timeseries.csv \
  || fail "merged timeseries differ after kill/resume"
echo "ok: killed sweep resumed to byte-identical merged outputs"

# --- 3. Corruption fuzz: reject with exit 2, never crash ------------------
check_rejects() {
  local file="$1" what="$2"
  "$RUNNER" inspect "$file" > /dev/null 2>&1
  local code=$?
  if [ "$code" -ne 2 ]; then
    fail "inspect of $what exited $code (want 2)"
  fi
}

REF=clean.ckpt
SIZE=$(wc -c < "$REF")
for len in 0 1 7 8 12 20 100 $((SIZE / 2)) $((SIZE - 1)); do
  head -c "$len" "$REF" > "cut_$len.ckpt"
  check_rejects "cut_$len.ckpt" "truncation to $len bytes"
done
for off in 0 4 8 16 40 200 $((SIZE / 2)) $((SIZE - 9)) $((SIZE - 1)); do
  cp "$REF" flip.ckpt
  printf '\xa5' | dd of=flip.ckpt bs=1 seek="$off" conv=notrunc 2> /dev/null
  cmp -s "$REF" flip.ckpt && continue  # flip was a no-op at this offset
  check_rejects flip.ckpt "byte flip at offset $off"
done
head -c "$SIZE" /dev/urandom > noise.ckpt
check_rejects noise.ckpt "random noise"
cat "$REF" <(printf 'xx') > padded.ckpt
check_rejects padded.ckpt "trailing garbage"
echo "ok: corrupted snapshots rejected with exit 2 (no crashes)"

# The CLI front end must map the same failures to exit 2.
"$PERDNN" simulate "${SIM_ARGS[@]}" --snapshot-resume noise.ckpt \
  > /dev/null 2>&1
[ $? -eq 2 ] || fail "CLI resume from corrupt snapshot did not exit 2"
# A valid snapshot resumed against a different scenario must be refused.
"$PERDNN" simulate inception campus perdnn --users 14 --minutes 25 --seed 10 \
  --snapshot-resume clean.ckpt > /dev/null 2>&1
[ $? -eq 2 ] || fail "CLI resume against wrong scenario did not exit 2"
echo "ok: CLI maps snapshot failures to exit 2"

if [ "$FAIL" -ne 0 ]; then
  echo "snapshot check FAILED" >&2
  exit 1
fi
echo "snapshot check passed"
