#!/usr/bin/env bash
# Builds the repo with ASan+UBSan (-DPERDNN_SANITIZE=address) and proves the
# observability contract end-to-end:
#   * journal/metrics/trace/timeseries unit tests and the journal
#     determinism gate run clean under the sanitizers;
#   * one seeded faulted simulation journals BYTE-IDENTICAL JSONL across
#     --threads 1/2/8, with the single-query fast path on and off
#     (PERDNN_NO_FASTPATH=1), and across a checkpoint/resume split;
#   * the binary (.jnl) encoding decodes to the same event stream;
#   * every journal parses through the bundled JSON parser
#     (perdnn_obs validate) and the scripted-fault chain reconstructs;
#   * a second -DPERDNN_SIMD=OFF configuration re-runs the forest/estimator/
#     shard-determinism tests with the AVX2 kernels compiled out, keeping
#     the scalar fallback ASan/UBSan-tested.
#
# Usage: tools/check_obs.sh [build-dir]     (default: build-obs)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-obs}"

cmake -B "$BUILD_DIR" -S . -DPERDNN_SANITIZE=address
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target perdnn_cli perdnn_obs_tool test_obs test_sim test_snapshot

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'Journal|MetricsTest|TraceTest|SimTimeseries|TimeseriesSim|SnapshotTest'

CLI="$BUILD_DIR/tools/perdnn"
OBS="$BUILD_DIR/tools/perdnn_obs"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# One seeded run with scripted faults: crash, total backhaul outage,
# telemetry dropout, client disconnect — every journalled subsystem fires.
cat > "$WORK/plan.json" <<'EOF'
{"events":[
  {"kind":"server_crash","at":2,"duration":3,"server":0},
  {"kind":"backhaul_degrade","at":1,"duration":4,"server":1,"peer":-2,"severity":1.0},
  {"kind":"telemetry_dropout","at":0,"duration":8,"server":2},
  {"kind":"client_disconnect","at":4,"duration":2,"client":1}
]}
EOF
SIM_ARGS=(simulate mobilenet campus perdnn --users 6 --minutes 20 --seed 5
          --fault-plan "$WORK/plan.json")

# Reference journal: serial, fast path on.
"$CLI" "${SIM_ARGS[@]}" --threads 1 --journal-out "$WORK/ref.jsonl" > /dev/null
test -s "$WORK/ref.jsonl"

# Determinism matrix: threads x fastpath, byte-compared against the
# reference.
for threads in 1 2 8; do
  for nofast in 0 1; do
    out="$WORK/t${threads}_f${nofast}.jsonl"
    PERDNN_NO_FASTPATH="$nofast" \
      "$CLI" "${SIM_ARGS[@]}" --threads "$threads" --journal-out "$out" \
      > /dev/null
    if ! cmp -s "$WORK/ref.jsonl" "$out"; then
      echo "error: journal differs at threads=$threads nofast=$nofast" >&2
      "$OBS" diff "$WORK/ref.jsonl" "$out" >&2 || true
      exit 1
    fi
  done
done

# Checkpoint/resume split: stop after interval 4, resume, and the final
# journal must equal the uninterrupted one byte for byte.
"$CLI" "${SIM_ARGS[@]}" --threads 2 \
  --snapshot-save "$WORK/ckpt" --snapshot-at 4 > /dev/null
"$CLI" "${SIM_ARGS[@]}" --threads 8 \
  --snapshot-resume "$WORK/ckpt" --journal-out "$WORK/resumed.jsonl" \
  > /dev/null
if ! cmp -s "$WORK/ref.jsonl" "$WORK/resumed.jsonl"; then
  echo "error: resumed journal differs from the uninterrupted run" >&2
  "$OBS" diff "$WORK/ref.jsonl" "$WORK/resumed.jsonl" >&2 || true
  exit 1
fi

# Binary encoding carries the same stream (diff exits 0 on identical).
"$CLI" "${SIM_ARGS[@]}" --threads 2 --journal-out "$WORK/ref.jnl" > /dev/null
"$OBS" diff "$WORK/ref.jsonl" "$WORK/ref.jnl" > /dev/null

# Every journal parses through the bundled JSON parser, and the scripted
# disconnect's causal chain reconstructs from attach to detach.
for j in "$WORK"/*.jsonl "$WORK/ref.jnl"; do
  "$OBS" validate "$j" > /dev/null
done
"$OBS" filter "$WORK/ref.jsonl" --kind fault_applied --client 1 \
  | grep -q '"kind":"fault_applied"'
"$OBS" chain "$WORK/ref.jsonl" --client 1 | grep -q "attach to server"
"$OBS" chain "$WORK/ref.jsonl" --client 1 | grep -q "detach from server"

# Scalar-fallback leg: SIMD compiled out, same sanitizers.
SCALAR_DIR="${BUILD_DIR}-scalar"
cmake -B "$SCALAR_DIR" -S . -DPERDNN_SANITIZE=address -DPERDNN_SIMD=OFF
cmake --build "$SCALAR_DIR" -j"$(nproc)" \
  --target test_ml test_estimation test_sim
ctest --test-dir "$SCALAR_DIR" --output-on-failure \
  -R 'FlatForest|Estimator|EstimateCache|ShardDeterminism'

echo "Observability check passed (build dirs: $BUILD_DIR, $SCALAR_DIR)"
