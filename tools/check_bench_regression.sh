#!/usr/bin/env bash
# Fast-path performance regression gate.
#
# Runs `bench_micro --json`, extracts one representative wall-clock per
# micro-bench (serial_s for the parallel-harness entries, fast_s for the
# fast-path entries) and compares them against the committed baseline
# BENCH_fastpath.json at the repo root:
#   * any micro more than 25% slower than its baseline fails the check
#     (plus a 2ms absolute slack so sub-millisecond entries aren't flaky);
#   * the upload-order fast-path speedups must stay >= 2x regardless of the
#     machine — that floor is the acceptance criterion of the fast path
#     itself, not a relative comparison.
# When no baseline exists the current run becomes the baseline (commit it).
#
# Usage: tools/check_bench_regression.sh [--update] [path/to/bench_micro]
#   --update   rewrite the baseline with the current run, then exit 0.
#
# Plain bash + awk on the harness's own one-line JSON; no python/jq needed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="$ROOT/BENCH_fastpath.json"

update=0
bench_micro="${BENCH_MICRO:-$ROOT/build/bench/bench_micro}"
for arg in "$@"; do
  case "$arg" in
    --update) update=1 ;;
    *) bench_micro="$arg" ;;
  esac
done

if [ ! -x "$bench_micro" ]; then
  echo "error: bench_micro not found at '$bench_micro'" >&2
  echo "build it (cmake --build build --target bench_micro) or pass its path" >&2
  exit 2
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
echo "running $bench_micro --json ..."
"$bench_micro" --json "$current" >/dev/null

if [ "$update" -eq 1 ] || [ ! -f "$BASELINE" ]; then
  cp "$current" "$BASELINE"
  echo "baseline written to $BASELINE — commit it"
  exit 0
fi

# Emits "name time speedup" per bench object. The harness writes its JSON on
# one line; splitting records on '{' isolates each bench object.
extract() {
  awk 'BEGIN { RS = "{" }
  /"name":"/ {
    name = ""; t = ""; sp = "-"
    if (match($0, /"name":"[^"]*"/)) name = substr($0, RSTART + 8, RLENGTH - 9)
    if (match($0, /"fast_s":[0-9.eE+-]+/)) t = substr($0, RSTART + 9, RLENGTH - 9)
    else if (match($0, /"serial_s":[0-9.eE+-]+/)) t = substr($0, RSTART + 11, RLENGTH - 11)
    if (match($0, /"speedup":[0-9.eE+-]+/)) sp = substr($0, RSTART + 10, RLENGTH - 10)
    if (name != "" && t != "") print name, t, sp
  }' "$1"
}

base_rows="$(extract "$BASELINE")"
fail=0
while read -r name t sp; do
  bt="$(printf '%s\n' "$base_rows" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$bt" ]; then
    echo "note: '$name' has no baseline entry (new bench — rerun with --update)"
    continue
  fi
  if awk -v c="$t" -v b="$bt" 'BEGIN { exit !(c > b * 1.25 + 0.002) }'; then
    echo "REGRESSION: $name ${t}s vs baseline ${bt}s (>25% slower)"
    fail=1
  else
    echo "ok: $name ${t}s (baseline ${bt}s)"
  fi
  case "$name" in
    upload_order_*)
      if awk -v s="$sp" 'BEGIN { exit !(s < 2.0) }'; then
        echo "REGRESSION: $name speedup ${sp}x below the 2x acceptance floor"
        fail=1
      fi ;;
  esac
done <<< "$(extract "$current")"

if [ "$fail" -ne 0 ]; then
  echo "bench regression check FAILED (refresh with --update only if the"
  echo "slowdown is intended and explained in the commit message)"
  exit 1
fi
echo "bench regression check passed"
