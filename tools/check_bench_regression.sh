#!/usr/bin/env bash
# Fast-path performance regression gate.
#
# Runs `bench_micro --json` (or takes a pre-computed result via
# BENCH_FASTPATH_JSON=path, skipping the run), extracts one representative
# wall-clock per micro-bench (serial_s for the parallel-harness entries,
# fast_s for the fast-path entries) and compares them against the committed
# baseline BENCH_fastpath.json at the repo root:
#   * any micro more than 25% slower than its baseline fails the check
#     (plus a 2ms absolute slack so sub-millisecond entries aren't flaky);
#   * the upload-order fast-path speedups must stay >= 2x regardless of the
#     machine — that floor is the acceptance criterion of the fast path
#     itself, not a relative comparison;
#   * the forest_batch SIMD speedup must stay >= 3x, but only when the
#     current result's "simd" field says the vector kernel actually ran
#     ("avx2") — a scalar-only build or CPU is exempt, not failing. The
#     kernel's target is 4x and quiet runs measure ~3.8-4.8x, but the shared
#     dev runner has multi-second noisy stretches that best-of-3 timing
#     can't fully hide (observed down to ~3.4x); the floor sits below that
#     band so a slow run doesn't flake the gate while a real regression
#     (e.g. losing the tree-interleaved walkers) still fails it;
#   * the serial-vs-pool speedups of the parallel-harness entries must stay
#     >= 50% of their baseline speedup — skipped entirely when the baseline
#     records "hardware_threads":1, where pool "speedups" are single-core
#     scheduling noise (e.g. the forest_train 0.982x of a 1-core runner).
# When no baseline exists the current run becomes the baseline (commit it).
#
# The city-scale benchmark is gated too, when a result is supplied: set
# BENCH_SCALE_JSON=path/to/result.json (produced by `bench_scale --json`) and
# it is compared against the committed BENCH_scale.json baseline —
# clients_per_sec must stay >= 50% of baseline and peak_rss_bytes <= 150%.
# The 1M-client run takes minutes, so it is never executed here implicitly;
# without BENCH_SCALE_JSON the scale gate is skipped with a note.
#
# The chaos-at-scale benchmark (`bench_chaos --sharded --json-out`) is gated
# the same way: set BENCH_CHAOS_JSON=path/to/result.json and it is compared
# against the committed BENCH_chaos_scale.json baseline —
#   * zero-fault availability must stay >= 0.999 (absolute floor: a run with
#     no fault plan must not lose queries to the fault machinery);
#   * mid-faults clients_per_sec must stay >= 50% of baseline (fault handling
#     must not wreck throughput).
# Without BENCH_CHAOS_JSON the chaos gate is skipped with a note.
#
# The cache-pressure benchmark (`bench_cache --json-out`) is gated the same
# way: set BENCH_CACHE_JSON=path/to/result.json and it is compared against
# the committed BENCH_cache.json baseline —
#   * the unbudgeted scenario must report zero evictions and zero partial
#     stores (absolute floor: with no budget the budget machinery is inert);
#   * the 1x/1-prefix scenario's peak_cache_bytes must stay within its own
#     budget_bytes (the budget invariant, visible in the artifact itself);
#   * the 1x/1-prefix backhaul_bytes must stay <= 150% of baseline (the
#     budget must keep throttling proactive traffic).
# Without BENCH_CACHE_JSON the cache gate is skipped with a note.
#
# Usage: tools/check_bench_regression.sh [--update] [path/to/bench_micro]
#   --update   rewrite the baseline(s) with the current run, then exit 0.
#
# Plain bash + awk on the harness's own one-line JSON; no python/jq needed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="$ROOT/BENCH_fastpath.json"
SCALE_BASELINE="$ROOT/BENCH_scale.json"
CHAOS_BASELINE="$ROOT/BENCH_chaos_scale.json"
CACHE_BASELINE="$ROOT/BENCH_cache.json"

update=0
bench_micro="${BENCH_MICRO:-$ROOT/build/bench/bench_micro}"
for arg in "$@"; do
  case "$arg" in
    --update) update=1 ;;
    *) bench_micro="$arg" ;;
  esac
done

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
if [ -n "${BENCH_FASTPATH_JSON:-}" ]; then
  if [ ! -f "$BENCH_FASTPATH_JSON" ]; then
    echo "error: BENCH_FASTPATH_JSON='$BENCH_FASTPATH_JSON' not found" >&2
    exit 2
  fi
  echo "using pre-computed result $BENCH_FASTPATH_JSON"
  cp "$BENCH_FASTPATH_JSON" "$current"
else
  if [ ! -x "$bench_micro" ]; then
    echo "error: bench_micro not found at '$bench_micro'" >&2
    echo "build it (cmake --build build --target bench_micro) or pass its path" >&2
    exit 2
  fi
  echo "running $bench_micro --json ..."
  "$bench_micro" --json "$current" >/dev/null
fi

if [ "$update" -eq 1 ] || [ ! -f "$BASELINE" ]; then
  cp "$current" "$BASELINE"
  echo "baseline written to $BASELINE — commit it"
  if [ -n "${BENCH_SCALE_JSON:-}" ] && [ -f "$BENCH_SCALE_JSON" ]; then
    cp "$BENCH_SCALE_JSON" "$SCALE_BASELINE"
    echo "scale baseline written to $SCALE_BASELINE — commit it"
  fi
  if [ -n "${BENCH_CHAOS_JSON:-}" ] && [ -f "$BENCH_CHAOS_JSON" ]; then
    cp "$BENCH_CHAOS_JSON" "$CHAOS_BASELINE"
    echo "chaos baseline written to $CHAOS_BASELINE — commit it"
  fi
  if [ -n "${BENCH_CACHE_JSON:-}" ] && [ -f "$BENCH_CACHE_JSON" ]; then
    cp "$BENCH_CACHE_JSON" "$CACHE_BASELINE"
    echo "cache baseline written to $CACHE_BASELINE — commit it"
  fi
  exit 0
fi

# Emits "name time speedup" per bench object. The harness writes its JSON on
# one line; splitting records on '{' isolates each bench object.
extract() {
  awk 'BEGIN { RS = "{" }
  /"name":"/ {
    name = ""; t = ""; sp = "-"
    if (match($0, /"name":"[^"]*"/)) name = substr($0, RSTART + 8, RLENGTH - 9)
    if (match($0, /"fast_s":[0-9.eE+-]+/)) t = substr($0, RSTART + 9, RLENGTH - 9)
    else if (match($0, /"serial_s":[0-9.eE+-]+/)) t = substr($0, RSTART + 11, RLENGTH - 11)
    if (match($0, /"speedup":[0-9.eE+-]+/)) sp = substr($0, RSTART + 10, RLENGTH - 10)
    if (name != "" && t != "") print name, t, sp
  }' "$1"
}

# Pulls a quoted or numeric scalar field out of a one-line JSON file.
json_field() { # file key
  awk -v k="$2" '{
    if (match($0, "\"" k "\":\"[^\"]*\""))
      print substr($0, RSTART + length(k) + 4, RLENGTH - length(k) - 5)
    else if (match($0, "\"" k "\":[0-9.eE+-]+"))
      print substr($0, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
  }' "$1"
}

base_rows="$(extract "$BASELINE")"
base_ht="$(json_field "$BASELINE" hardware_threads)"
cur_simd="$(json_field "$current" simd)"
if [ "${base_ht:-0}" -le 1 ]; then
  echo "note: baseline hardware_threads=${base_ht:-?} — pool-speedup checks skipped"
fi
fail=0
while read -r name t sp; do
  bt="$(printf '%s\n' "$base_rows" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$bt" ]; then
    echo "note: '$name' has no baseline entry (new bench — rerun with --update)"
    continue
  fi
  if awk -v c="$t" -v b="$bt" 'BEGIN { exit !(c > b * 1.25 + 0.002) }'; then
    echo "REGRESSION: $name ${t}s vs baseline ${bt}s (>25% slower)"
    fail=1
  else
    echo "ok: $name ${t}s (baseline ${bt}s)"
  fi
  case "$name" in
    upload_order_*)
      if awk -v s="$sp" 'BEGIN { exit !(s < 2.0) }'; then
        echo "REGRESSION: $name speedup ${sp}x below the 2x acceptance floor"
        fail=1
      fi ;;
    forest_batch)
      # SIMD floor only where the vector kernel ran; the scalar fallback is
      # a correctness path, not a performance contract.
      if [ "$cur_simd" = "avx2" ]; then
        if awk -v s="$sp" 'BEGIN { exit !(s < 3.0) }'; then
          echo "REGRESSION: forest_batch SIMD speedup ${sp}x below the 3x floor"
          fail=1
        fi
      else
        echo "note: forest_batch ran the scalar kernel (simd=${cur_simd:-unknown}) — 3x floor skipped"
      fi ;;
    simulator|forest_train|profiler_sweep)
      # Serial-vs-pool speedup: meaningless on a single-core baseline.
      if [ "${base_ht:-0}" -gt 1 ]; then
        bsp="$(printf '%s\n' "$base_rows" | awk -v n="$name" '$1 == n { print $3 }')"
        if [ -n "$bsp" ] && [ "$bsp" != "-" ] &&
           awk -v s="$sp" -v b="$bsp" 'BEGIN { exit !(s < b * 0.5) }'; then
          echo "REGRESSION: $name pool speedup ${sp}x vs baseline ${bsp}x (below 50%)"
          fail=1
        fi
      fi ;;
  esac
done <<< "$(extract "$current")"

# ---- city-scale gate (BENCH_scale.json) -----------------------------------
# Pulls one numeric field out of bench_scale's one-line JSON result.
scale_field() { # file key
  awk -v k="$2" '{
    if (match($0, "\"" k "\":[0-9.eE+-]+"))
      print substr($0, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
  }' "$1"
}

if [ -z "${BENCH_SCALE_JSON:-}" ]; then
  echo "note: BENCH_SCALE_JSON not set — city-scale gate skipped"
elif [ ! -f "$BENCH_SCALE_JSON" ]; then
  echo "error: BENCH_SCALE_JSON='$BENCH_SCALE_JSON' not found" >&2
  exit 2
elif [ ! -f "$SCALE_BASELINE" ]; then
  cp "$BENCH_SCALE_JSON" "$SCALE_BASELINE"
  echo "scale baseline written to $SCALE_BASELINE — commit it"
else
  cur_cps="$(scale_field "$BENCH_SCALE_JSON" clients_per_sec)"
  base_cps="$(scale_field "$SCALE_BASELINE" clients_per_sec)"
  cur_rss="$(scale_field "$BENCH_SCALE_JSON" peak_rss_bytes)"
  base_rss="$(scale_field "$SCALE_BASELINE" peak_rss_bytes)"
  if [ -z "$cur_cps" ] || [ -z "$base_cps" ] || \
     [ -z "$cur_rss" ] || [ -z "$base_rss" ]; then
    echo "error: could not parse clients_per_sec/peak_rss_bytes from scale JSON" >&2
    exit 2
  fi
  if awk -v c="$cur_cps" -v b="$base_cps" 'BEGIN { exit !(c < b * 0.5) }'; then
    echo "REGRESSION: scale throughput ${cur_cps} clients/s vs baseline ${base_cps} (below 50% floor)"
    fail=1
  else
    echo "ok: scale throughput ${cur_cps} clients/s (baseline ${base_cps})"
  fi
  if awk -v c="$cur_rss" -v b="$base_rss" 'BEGIN { exit !(c > b * 1.5) }'; then
    echo "REGRESSION: scale peak RSS ${cur_rss} bytes vs baseline ${base_rss} (above 150% ceiling)"
    fail=1
  else
    echo "ok: scale peak RSS ${cur_rss} bytes (baseline ${base_rss})"
  fi
fi

# ---- chaos-at-scale gate (BENCH_chaos_scale.json) -------------------------
# Pulls one numeric field out of a named scenario object inside bench_chaos's
# one-line JSON result. Splitting records on '{' isolates each scenario.
chaos_scenario_field() { # file scenario key
  awk -v s="$2" -v k="$3" 'BEGIN { RS = "{" }
  index($0, "\"scenario\":\"" s "\"") {
    if (match($0, "\"" k "\":[0-9.eE+-]+"))
      print substr($0, RSTART + length(k) + 3, RLENGTH - length(k) - 3)
  }' "$1"
}

if [ -z "${BENCH_CHAOS_JSON:-}" ]; then
  echo "note: BENCH_CHAOS_JSON not set — chaos-at-scale gate skipped"
elif [ ! -f "$BENCH_CHAOS_JSON" ]; then
  echo "error: BENCH_CHAOS_JSON='$BENCH_CHAOS_JSON' not found" >&2
  exit 2
elif [ ! -f "$CHAOS_BASELINE" ]; then
  cp "$BENCH_CHAOS_JSON" "$CHAOS_BASELINE"
  echo "chaos baseline written to $CHAOS_BASELINE — commit it"
else
  zf_avail="$(chaos_scenario_field "$BENCH_CHAOS_JSON" zero-fault availability)"
  cur_mf_cps="$(chaos_scenario_field "$BENCH_CHAOS_JSON" mid-faults clients_per_sec)"
  base_mf_cps="$(chaos_scenario_field "$CHAOS_BASELINE" mid-faults clients_per_sec)"
  if [ -z "$zf_avail" ] || [ -z "$cur_mf_cps" ] || [ -z "$base_mf_cps" ]; then
    echo "error: could not parse zero-fault/mid-faults scenarios from chaos JSON" >&2
    exit 2
  fi
  # Zero-fault availability is an absolute floor, not a relative one: with no
  # fault plan the fault machinery must be inert, so any loss is a bug.
  if awk -v a="$zf_avail" 'BEGIN { exit !(a < 0.999) }'; then
    echo "REGRESSION: chaos zero-fault availability ${zf_avail} below the 0.999 floor"
    fail=1
  else
    echo "ok: chaos zero-fault availability ${zf_avail}"
  fi
  if awk -v c="$cur_mf_cps" -v b="$base_mf_cps" 'BEGIN { exit !(c < b * 0.5) }'; then
    echo "REGRESSION: chaos mid-faults throughput ${cur_mf_cps} clients/s vs baseline ${base_mf_cps} (below 50% floor)"
    fail=1
  else
    echo "ok: chaos mid-faults throughput ${cur_mf_cps} clients/s (baseline ${base_mf_cps})"
  fi
fi

# ---- cache-pressure gate (BENCH_cache.json) -------------------------------
# Scenario objects share the chaos JSON shape, so the same per-scenario
# field extractor applies.
if [ -z "${BENCH_CACHE_JSON:-}" ]; then
  echo "note: BENCH_CACHE_JSON not set — cache-pressure gate skipped"
elif [ ! -f "$BENCH_CACHE_JSON" ]; then
  echo "error: BENCH_CACHE_JSON='$BENCH_CACHE_JSON' not found" >&2
  exit 2
elif [ ! -f "$CACHE_BASELINE" ]; then
  cp "$BENCH_CACHE_JSON" "$CACHE_BASELINE"
  echo "cache baseline written to $CACHE_BASELINE — commit it"
else
  ub_evict="$(chaos_scenario_field "$BENCH_CACHE_JSON" 1x/unbudgeted cache_evictions)"
  ub_partial="$(chaos_scenario_field "$BENCH_CACHE_JSON" 1x/unbudgeted cache_partial_stores)"
  t_peak="$(chaos_scenario_field "$BENCH_CACHE_JSON" 1x/1-prefix peak_cache_bytes)"
  t_budget="$(chaos_scenario_field "$BENCH_CACHE_JSON" 1x/1-prefix budget_bytes)"
  t_servers="$(json_field "$BENCH_CACHE_JSON" servers)"
  cur_bh="$(chaos_scenario_field "$BENCH_CACHE_JSON" 1x/1-prefix backhaul_bytes)"
  base_bh="$(chaos_scenario_field "$CACHE_BASELINE" 1x/1-prefix backhaul_bytes)"
  if [ -z "$ub_evict" ] || [ -z "$ub_partial" ] || [ -z "$t_peak" ] || \
     [ -z "$t_budget" ] || [ -z "$t_servers" ] || [ -z "$cur_bh" ] || \
     [ -z "$base_bh" ]; then
    echo "error: could not parse 1x/unbudgeted and 1x/1-prefix scenarios from cache JSON" >&2
    exit 2
  fi
  # With no budget set the budget machinery must be inert — absolute floor.
  if awk -v e="$ub_evict" -v p="$ub_partial" 'BEGIN { exit !(e > 0 || p > 0) }'; then
    echo "REGRESSION: unbudgeted cache run reports ${ub_evict} evictions / ${ub_partial} partial stores (must be 0)"
    fail=1
  else
    echo "ok: unbudgeted cache run is budget-inert"
  fi
  # peak_cache_bytes sums residency across all servers; budget_bytes is per
  # server, so the invariant ceiling is budget * servers.
  if awk -v p="$t_peak" -v b="$t_budget" -v s="$t_servers" 'BEGIN { exit !(p > b * s) }'; then
    echo "REGRESSION: 1-prefix peak cache ${t_peak} bytes exceeds budget ${t_budget} x ${t_servers} servers"
    fail=1
  else
    echo "ok: 1-prefix peak cache ${t_peak} bytes within budget ceiling"
  fi
  if awk -v c="$cur_bh" -v b="$base_bh" 'BEGIN { exit !(c > b * 1.5) }'; then
    echo "REGRESSION: 1-prefix backhaul ${cur_bh} bytes vs baseline ${base_bh} (above 150% ceiling)"
    fail=1
  else
    echo "ok: 1-prefix backhaul ${cur_bh} bytes (baseline ${base_bh})"
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "bench regression check FAILED (refresh with --update only if the"
  echo "slowdown is intended and explained in the commit message)"
  exit 1
fi
echo "bench regression check passed"
