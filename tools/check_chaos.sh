#!/usr/bin/env bash
# Builds the repo with ASan+UBSan (-DPERDNN_SANITIZE=address) and runs the
# robustness surface under it: the fault-plan/timeline unit tests, the
# migration-dispatcher retry tests, the end-to-end fault simulations, the
# fault-plan determinism gates (serial and sharded), and bench_chaos smoke
# runs (sweep + scripted plan + sharded fault scenario + strict-flag
# rejection). A second leg rebuilds with -DPERDNN_SIMD=OFF and re-runs the
# sharded fault suite so the scalar kernels get the same sanitizer coverage
# as the vector ones. Any sanitizer report fails the script.
#
# The budgeted-cache leg rides along: the CacheBudget suites (which include
# the crash-mid-pressure kill -9 resume byte-identity gate and per-interval
# budget-invariant checks) run under the sanitizers in both legs, plus a
# bench_cache smoke run exercising eviction/partial-residency churn.
#
# Usage: tools/check_chaos.sh [build-dir]     (default: build-chaos)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-chaos}"

cmake -B "$BUILD_DIR" -S . -DPERDNN_SANITIZE=address -DPERDNN_SIMD=ON
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_faults test_edge test_sim bench_chaos bench_cache

export PERDNN_THREADS=4
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"

CHAOS_TESTS='FaultPlan|FaultTimeline|FaultSim|MigrationDispatcher|LayerCache|ParallelDeterminism|SimulationConfigValidate|SimulationMetricsFault|ShardDeterminism|ShardFault|ShardRetry|CacheBudget'

ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$CHAOS_TESTS"

# Smoke: the chaos sweep runs end-to-end and the strict CLI rejects junk.
"$BUILD_DIR"/bench/bench_chaos --model mobilenet --seed 7 --threads 4

PLAN_FILE="$(mktemp)"
trap 'rm -f "$PLAN_FILE"' EXIT
cat > "$PLAN_FILE" <<'EOF'
{"events":[
  {"kind":"server_crash","at":2,"duration":4,"server":0},
  {"kind":"backhaul_degrade","at":1,"duration":5,"server":1,"peer":-2,"severity":1.0},
  {"kind":"telemetry_dropout","at":0,"duration":10,"server":2},
  {"kind":"client_disconnect","at":3,"duration":2,"client":0}
]}
EOF
"$BUILD_DIR"/bench/bench_chaos --plan "$PLAN_FILE" --json --threads 4 > /dev/null

# Smoke: the sharded chaos path (fault scenarios folded into the tiled
# engine) at a small scale, under the sanitizers.
"$BUILD_DIR"/bench/bench_chaos --sharded --clients 1500 --tiles-x 6 \
  --tiles-y 6 --intervals 8 --shards 4 --threads 4 > /dev/null

if "$BUILD_DIR"/bench/bench_chaos --definitely-not-a-flag 2> /dev/null; then
  echo "error: bench_chaos accepted an unknown flag" >&2
  exit 1
fi

# Smoke: the budgeted-cache sweep (eviction + partial-residency churn in
# every budgeted scenario) at a small scale, under the sanitizers.
"$BUILD_DIR"/bench/bench_cache --clients 1500 --tiles-x 6 --tiles-y 6 \
  --intervals 8 --shards 4 --threads 4 > /dev/null

if "$BUILD_DIR"/bench/bench_cache --definitely-not-a-flag 2> /dev/null; then
  echo "error: bench_cache accepted an unknown flag" >&2
  exit 1
fi

# ---- scalar leg: same sanitizer coverage with the SIMD kernels off --------
SCALAR_DIR="${BUILD_DIR}-scalar"
cmake -B "$SCALAR_DIR" -S . -DPERDNN_SANITIZE=address -DPERDNN_SIMD=OFF
cmake --build "$SCALAR_DIR" -j"$(nproc)" \
  --target test_faults test_sim bench_chaos

ctest --test-dir "$SCALAR_DIR" --output-on-failure \
  -R 'FaultTimeline|FaultSim|ShardDeterminism|ShardFault|ShardCacheBudget'

"$SCALAR_DIR"/bench/bench_chaos --sharded --clients 1500 --tiles-x 6 \
  --tiles-y 6 --intervals 8 --shards 4 --threads 4 > /dev/null

echo "Chaos check passed (build dirs: $BUILD_DIR, $SCALAR_DIR)"
