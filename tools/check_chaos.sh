#!/usr/bin/env bash
# Builds the repo with ASan+UBSan (-DPERDNN_SANITIZE=address) and runs the
# robustness surface under it: the fault-plan/timeline unit tests, the
# migration-dispatcher retry tests, the end-to-end fault simulations, the
# fault-plan determinism gate, and a bench_chaos smoke run (sweep + scripted
# plan + strict-flag rejection). Any sanitizer report fails the script.
#
# Usage: tools/check_chaos.sh [build-dir]     (default: build-chaos)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-chaos}"

cmake -B "$BUILD_DIR" -S . -DPERDNN_SANITIZE=address
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_faults test_edge test_sim bench_chaos

export PERDNN_THREADS=4
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'FaultPlan|FaultTimeline|FaultSim|MigrationDispatcher|LayerCache|ParallelDeterminism|SimulationConfigValidate|SimulationMetricsFault'

# Smoke: the chaos sweep runs end-to-end and the strict CLI rejects junk.
"$BUILD_DIR"/bench/bench_chaos --model mobilenet --seed 7 --threads 4

PLAN_FILE="$(mktemp)"
trap 'rm -f "$PLAN_FILE"' EXIT
cat > "$PLAN_FILE" <<'EOF'
{"events":[
  {"kind":"server_crash","at":2,"duration":4,"server":0},
  {"kind":"backhaul_degrade","at":1,"duration":5,"server":1,"peer":-2,"severity":1.0},
  {"kind":"telemetry_dropout","at":0,"duration":10,"server":2},
  {"kind":"client_disconnect","at":3,"duration":2,"client":0}
]}
EOF
"$BUILD_DIR"/bench/bench_chaos --plan "$PLAN_FILE" --json --threads 4 > /dev/null

if "$BUILD_DIR"/bench/bench_chaos --definitely-not-a-flag 2> /dev/null; then
  echo "error: bench_chaos accepted an unknown flag" >&2
  exit 1
fi

echo "Chaos check passed (build dir: $BUILD_DIR)"
