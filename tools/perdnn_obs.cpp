// perdnn_obs — query tool for the deterministic event journal.
//
//   perdnn_obs validate <journal>
//       Parse the journal (JSONL or binary .jnl, auto-detected) and print a
//       one-line summary. Malformed input exits 2.
//   perdnn_obs filter <journal> [--client C] [--server S] [--kind K]
//                     [--from I] [--to I]
//       Print matching events as JSONL (same schema --journal-out writes).
//       --server matches either endpoint (server or peer); --kind takes a
//       lower_snake_case event name; --from/--to bound the interval range
//       (inclusive).
//   perdnn_obs aggregate <journal> [--top N]
//       Per-kind event counts, migration byte accounting, and the top-N
//       servers by cache evictions + TTL expiries (default 5).
//   perdnn_obs chain <journal> (<chain-id> | --client C)
//       Reconstruct one causal chain — attach -> plan -> upload -> serve /
//       fallback — as an indented timeline with a latency breakdown. With
//       --client, every chain of that client is printed in order.
//   perdnn_obs diff <journal-a> <journal-b>
//       Compare two journals event by event; print the first divergence
//       with context. Identical journals exit 0, differing ones exit 1
//       (the debugging tool for determinism breaks).
//   perdnn_obs convert <in> <out>
//       Re-encode a journal; the output form is chosen by the extension of
//       <out> (.jnl = binary, anything else = JSONL).
//
// All input errors exit 2 with a message on stderr; `diff` reserves exit 1
// for "valid but different".
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace {

using namespace perdnn;
using obs::JournalEvent;
using obs::JournalEventKind;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  perdnn_obs validate <journal>\n"
      "  perdnn_obs filter <journal> [--client C] [--server S] [--kind K]\n"
      "                    [--from I] [--to I]\n"
      "  perdnn_obs aggregate <journal> [--top N]\n"
      "  perdnn_obs chain <journal> (<chain-id> | --client C)\n"
      "  perdnn_obs diff <journal-a> <journal-b>\n"
      "  perdnn_obs convert <in> <out>\n"
      "journals may be JSONL (--journal-out FILE) or binary (FILE.jnl);\n"
      "the format is auto-detected on read\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Loads a journal in either encoding (binary magic sniffed first).
std::vector<JournalEvent> load_journal(const std::string& path) {
  const std::string bytes = read_file(path);
  if (obs::journal_is_binary(bytes)) return obs::journal_decode(bytes);
  return obs::journal_from_jsonl(bytes);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Strict int parse: the whole token must be numeric.
bool parse_int(const std::string& text, long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

const char* detach_reason_name(std::int32_t detail) {
  switch (detail) {
    case obs::kDetachMoved: return "moved";
    case obs::kDetachTraceEnd: return "trace_end";
    case obs::kDetachCrash: return "crash";
    case obs::kDetachDisconnect: return "disconnect";
    case obs::kDetachUnreachable: return "unreachable";
    default: return "?";
  }
}

const char* plan_class_name(std::int32_t detail) {
  switch (detail) {
    case obs::kPlanHit: return "hit";
    case obs::kPlanPartial: return "partial";
    case obs::kPlanMiss: return "miss";
    default: return "?";
  }
}

const char* fault_code_name(std::int32_t detail) {
  switch (detail) {
    case obs::kFaultServerCrash: return "server_crash";
    case obs::kFaultBackhaulDegrade: return "backhaul_degrade";
    case obs::kFaultTelemetryDropout: return "telemetry_dropout";
    case obs::kFaultClientDisconnect: return "client_disconnect";
    default: return "?";
  }
}

const char* drop_reason_name(std::int32_t aux) {
  switch (aux) {
    case obs::kDropRetryBudget: return "retry_budget";
    case obs::kDropDissolved: return "dissolved";
    case obs::kDropQueueFull: return "queue_full";
    default: return "?";
  }
}

/// One human-readable line for the `chain` timeline.
std::string describe(const JournalEvent& e) {
  char buf[256];
  switch (e.kind) {
    case JournalEventKind::kAttach:
      std::snprintf(buf, sizeof buf,
                    "attach to server %d (link factor %.3f)", e.server,
                    e.value);
      break;
    case JournalEventKind::kDetach:
      std::snprintf(buf, sizeof buf, "detach from server %d (%s)", e.server,
                    detach_reason_name(e.detail));
      break;
    case JournalEventKind::kPlan:
    case JournalEventKind::kDegradedPlan:
      std::snprintf(buf, sizeof buf,
                    "%s on server %d: %s, %d layer(s) / %lld bytes to upload",
                    e.kind == JournalEventKind::kDegradedPlan
                        ? "degraded plan"
                        : "plan",
                    e.server, plan_class_name(e.detail), e.aux,
                    static_cast<long long>(e.bytes));
      break;
    case JournalEventKind::kColdServe:
      std::snprintf(buf, sizeof buf,
                    "cold window on server %d: %d quer%s (%d routed), "
                    "latency sum %.3fs",
                    e.server, e.aux, e.aux == 1 ? "y" : "ies", e.detail,
                    e.value);
      break;
    case JournalEventKind::kLocalFallback:
      std::snprintf(buf, sizeof buf,
                    "local fallback near server %d: %d quer%s, latency sum "
                    "%.3fs",
                    e.server, e.aux, e.aux == 1 ? "y" : "ies", e.value);
      break;
    case JournalEventKind::kMigrationPlanned:
      std::snprintf(buf, sizeof buf,
                    "migration planned %d -> %d: %d layer(s) / %lld bytes",
                    e.server, e.peer, e.aux,
                    static_cast<long long>(e.bytes));
      break;
    case JournalEventKind::kMigrationPushed:
      std::snprintf(buf, sizeof buf,
                    "migration pushed %d -> %d: %d layer(s), %lld bytes "
                    "crossed",
                    e.server, e.peer, e.aux,
                    static_cast<long long>(e.bytes));
      break;
    case JournalEventKind::kMigrationDeferred:
      std::snprintf(buf, sizeof buf,
                    "migration deferred %d -> %d: %lld bytes, attempt %d, "
                    "retry at interval %d",
                    e.server, e.peer, static_cast<long long>(e.bytes),
                    e.detail, e.aux);
      break;
    case JournalEventKind::kMigrationRetried:
      std::snprintf(buf, sizeof buf,
                    "migration retried %d -> %d: %lld bytes, attempt %d",
                    e.server, e.peer, static_cast<long long>(e.bytes),
                    e.detail);
      break;
    case JournalEventKind::kMigrationDropped:
      std::snprintf(buf, sizeof buf,
                    "migration dropped %d -> %d: %lld bytes after %d "
                    "attempt(s) (%s)",
                    e.server, e.peer, static_cast<long long>(e.bytes),
                    e.detail, drop_reason_name(e.aux));
      break;
    case JournalEventKind::kFaultApplied:
      std::snprintf(buf, sizeof buf,
                    "fault applied: %s (server %d, %d interval(s), severity "
                    "%.2f)",
                    fault_code_name(e.detail), e.server, e.aux, e.value);
      break;
    case JournalEventKind::kFaultCleared:
      std::snprintf(buf, sizeof buf, "fault cleared: %s (server %d)",
                    fault_code_name(e.detail), e.server);
      break;
    case JournalEventKind::kCacheStore:
      std::snprintf(buf, sizeof buf, "cache store on server %d: %d new "
                    "layer(s)",
                    e.server, e.aux);
      break;
    case JournalEventKind::kCacheTouch:
      std::snprintf(buf, sizeof buf, "cache TTL refresh on server %d",
                    e.server);
      break;
    case JournalEventKind::kCacheEvict:
      // Crash wipes evict with bytes = 0; budget evictions carry the
      // victim's resident byte count.
      if (e.bytes > 0)
        std::snprintf(buf, sizeof buf,
                      "cache evicted on server %d (budget, %d layer(s), "
                      "%lld bytes)",
                      e.server, e.aux, static_cast<long long>(e.bytes));
      else
        std::snprintf(buf, sizeof buf,
                      "cache evicted on server %d (crash wipe, %d layer(s))",
                      e.server, e.aux);
      break;
    case JournalEventKind::kCacheExpire:
      std::snprintf(buf, sizeof buf,
                    "cache expired on server %d (TTL, %d layer(s))", e.server,
                    e.aux);
      break;
    case JournalEventKind::kCheckpointSave:
      std::snprintf(buf, sizeof buf, "checkpoint saved");
      break;
    case JournalEventKind::kCheckpointResume:
      std::snprintf(buf, sizeof buf, "resumed from checkpoint");
      break;
    case JournalEventKind::kAttachShed:
      std::snprintf(buf, sizeof buf,
                    "attach shed by server %d admission control "
                    "(queue depth %d, cached prefix %d)",
                    e.server, e.detail, e.aux);
      break;
    case JournalEventKind::kCachePartial:
      std::snprintf(buf, sizeof buf,
                    "cache store trimmed on server %d (budget, %d layer(s) "
                    "refused, %lld bytes)",
                    e.server, e.aux, static_cast<long long>(e.bytes));
      break;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Subcommands

int cmd_validate(const std::string& path) {
  const std::string bytes = read_file(path);
  const bool binary = obs::journal_is_binary(bytes);
  const std::vector<JournalEvent> events =
      binary ? obs::journal_decode(bytes) : obs::journal_from_jsonl(bytes);
  int min_interval = 0, max_interval = 0;
  std::uint64_t max_chain = 0;
  for (const JournalEvent& e : events) {
    min_interval = std::min(min_interval, e.interval);
    max_interval = std::max(max_interval, e.interval);
    max_chain = std::max(max_chain, e.chain);
  }
  std::printf("%s: valid %s journal, %zu event(s), intervals %d..%d, "
              "%llu chain(s)\n",
              path.c_str(), binary ? "binary" : "JSONL", events.size(),
              min_interval, max_interval,
              static_cast<unsigned long long>(max_chain));
  return 0;
}

struct Filter {
  std::optional<long long> client;
  std::optional<long long> server;
  std::optional<JournalEventKind> kind;
  std::optional<long long> from;
  std::optional<long long> to;

  bool matches(const JournalEvent& e) const {
    if (client && e.client != *client) return false;
    if (server && e.server != *server && e.peer != *server) return false;
    if (kind && e.kind != *kind) return false;
    if (from && e.interval < *from) return false;
    if (to && e.interval > *to) return false;
    return true;
  }
};

std::optional<Filter> parse_filter(int argc, char** argv) {
  Filter f;
  for (int i = 0; i < argc; ++i) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: flag '%s' needs an argument\n",
                   name.c_str());
      return std::nullopt;
    }
    const std::string value = argv[++i];
    long long n = 0;
    if (name == "--kind") {
      JournalEventKind kind;
      if (!obs::journal_kind_from_name(value, &kind)) {
        std::fprintf(stderr, "error: unknown event kind '%s'\n",
                     value.c_str());
        return std::nullopt;
      }
      f.kind = kind;
      continue;
    }
    if (!parse_int(value, &n)) {
      std::fprintf(stderr, "error: flag '%s' got non-numeric value '%s'\n",
                   name.c_str(), value.c_str());
      return std::nullopt;
    }
    if (name == "--client") f.client = n;
    else if (name == "--server") f.server = n;
    else if (name == "--from") f.from = n;
    else if (name == "--to") f.to = n;
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", name.c_str());
      return std::nullopt;
    }
  }
  return f;
}

int cmd_filter(const std::string& path, int argc, char** argv) {
  const std::optional<Filter> filter = parse_filter(argc, argv);
  if (!filter) return 2;
  std::vector<JournalEvent> matched;
  for (const JournalEvent& e : load_journal(path))
    if (filter->matches(e)) matched.push_back(e);
  std::fputs(obs::journal_to_jsonl(matched).c_str(), stdout);
  std::fprintf(stderr, "%zu event(s) matched\n", matched.size());
  return 0;
}

int cmd_aggregate(const std::string& path, int argc, char** argv) {
  long long top_n = 5;
  for (int i = 0; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "--top" && i + 1 < argc && parse_int(argv[i + 1], &top_n) &&
        top_n > 0) {
      ++i;
      continue;
    }
    std::fprintf(stderr, "error: unknown flag or bad value '%s'\n",
                 name.c_str());
    return 2;
  }
  const std::vector<JournalEvent> events = load_journal(path);

  std::map<std::string, long long> by_kind;
  std::map<ServerId, long long> evictions;  // crash wipes + TTL expiries
  long long planned_bytes = 0, pushed_bytes = 0, deferred_bytes = 0,
            retried_bytes = 0, dropped_bytes = 0;
  long long shed_attaches = 0;
  long long budget_evictions = 0, budget_evicted_bytes = 0;
  long long partial_stores = 0, partial_refused_bytes = 0;
  for (const JournalEvent& e : events) {
    ++by_kind[obs::journal_kind_name(e.kind)];
    switch (e.kind) {
      case JournalEventKind::kCacheEvict:
      case JournalEventKind::kCacheExpire:
        ++evictions[e.server];
        if (e.kind == JournalEventKind::kCacheEvict && e.bytes > 0) {
          ++budget_evictions;
          budget_evicted_bytes += e.bytes;
        }
        break;
      case JournalEventKind::kCachePartial:
        ++partial_stores;
        partial_refused_bytes += e.bytes;
        break;
      case JournalEventKind::kMigrationPlanned:
        planned_bytes += e.bytes;
        break;
      case JournalEventKind::kMigrationPushed:
        pushed_bytes += e.bytes;
        break;
      case JournalEventKind::kMigrationDeferred:
        deferred_bytes += e.bytes;
        break;
      case JournalEventKind::kMigrationRetried:
        retried_bytes += e.bytes;
        break;
      case JournalEventKind::kMigrationDropped:
        dropped_bytes += e.bytes;
        break;
      case JournalEventKind::kAttachShed:
        ++shed_attaches;
        break;
      default:
        break;
    }
  }

  std::printf("%zu event(s)\n", events.size());
  std::printf("events by kind:\n");
  for (const auto& [kind, count] : by_kind)
    std::printf("  %-20s %lld\n", kind.c_str(), count);
  std::printf("migration bytes: planned %lld, pushed %lld, deferred %lld, "
              "retried %lld, dropped %lld\n",
              planned_bytes, pushed_bytes, deferred_bytes, retried_bytes,
              dropped_bytes);
  if (shed_attaches > 0)
    std::printf("admission control: %lld attach(es) shed\n", shed_attaches);
  if (budget_evictions > 0 || partial_stores > 0)
    std::printf("cache budget: %lld eviction(s) (%lld bytes), %lld partial "
                "store(s) (%lld bytes refused)\n",
                budget_evictions, budget_evicted_bytes, partial_stores,
                partial_refused_bytes);

  std::vector<std::pair<ServerId, long long>> ranked(evictions.begin(),
                                                     evictions.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (ranked.size() > static_cast<std::size_t>(top_n))
    ranked.resize(static_cast<std::size_t>(top_n));
  std::printf("top %lld server(s) by evictions + TTL expiries:\n", top_n);
  for (const auto& [server, count] : ranked)
    std::printf("  server %-4d %lld\n", server, count);
  return 0;
}

/// Prints one chain's causal sequence and its latency breakdown. Returns
/// false if no event carries the chain id.
bool print_chain(const std::vector<JournalEvent>& events,
                 std::uint64_t chain) {
  std::vector<const JournalEvent*> seq;
  for (const JournalEvent& e : events)
    if (e.chain == chain) seq.push_back(&e);
  if (seq.empty()) return false;

  std::printf("chain %llu (client %d), %zu event(s):\n",
              static_cast<unsigned long long>(chain), seq.front()->client,
              seq.size());
  long long cold_queries = 0, local_queries = 0;
  double cold_latency = 0.0, local_latency = 0.0;
  for (const JournalEvent* e : seq) {
    std::printf("  [interval %4d] %s\n", e->interval, describe(*e).c_str());
    if (e->kind == JournalEventKind::kColdServe) {
      cold_queries += e->aux;
      cold_latency += e->value;
    } else if (e->kind == JournalEventKind::kLocalFallback) {
      local_queries += e->aux;
      local_latency += e->value;
    }
  }
  std::printf("  latency breakdown: %lld cold-window quer%s",
              cold_queries, cold_queries == 1 ? "y" : "ies");
  if (cold_queries > 0)
    std::printf(" (mean %.3fs)",
                cold_latency / static_cast<double>(cold_queries));
  std::printf(", %lld local-fallback quer%s", local_queries,
              local_queries == 1 ? "y" : "ies");
  if (local_queries > 0)
    std::printf(" (mean %.3fs)",
                local_latency / static_cast<double>(local_queries));
  std::printf("\n");
  return true;
}

int cmd_chain(const std::string& path, int argc, char** argv) {
  const std::vector<JournalEvent> events = load_journal(path);
  if (argc == 2 && std::strcmp(argv[0], "--client") == 0) {
    long long client = 0;
    if (!parse_int(argv[1], &client)) {
      std::fprintf(stderr, "error: --client got non-numeric value '%s'\n",
                   argv[1]);
      return 2;
    }
    // Every chain this client ever opened, in chain order.
    std::vector<std::uint64_t> chains;
    for (const JournalEvent& e : events)
      if (e.client == client && e.chain != 0 &&
          (chains.empty() || chains.back() != e.chain))
        chains.push_back(e.chain);
    std::sort(chains.begin(), chains.end());
    chains.erase(std::unique(chains.begin(), chains.end()), chains.end());
    if (chains.empty()) {
      std::fprintf(stderr, "no chains recorded for client %lld\n", client);
      return 1;
    }
    for (const std::uint64_t chain : chains) print_chain(events, chain);
    return 0;
  }
  if (argc != 1) return usage();
  long long chain = 0;
  if (!parse_int(argv[0], &chain) || chain <= 0) {
    std::fprintf(stderr, "error: chain id must be a positive integer "
                 "(got '%s')\n",
                 argv[0]);
    return 2;
  }
  if (!print_chain(events, static_cast<std::uint64_t>(chain))) {
    std::fprintf(stderr, "chain %lld not found\n", chain);
    return 1;
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const std::vector<JournalEvent> a = load_journal(path_a);
  const std::vector<JournalEvent> b = load_journal(path_b);
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) continue;
    std::printf("journals diverge at event %zu:\n", i);
    if (i > 0)
      std::printf("  last common: [interval %4d] %s\n", a[i - 1].interval,
                  describe(a[i - 1]).c_str());
    std::printf("  a: [interval %4d] %s\n", a[i].interval,
                describe(a[i]).c_str());
    std::printf("  b: [interval %4d] %s\n", b[i].interval,
                describe(b[i]).c_str());
    return 1;
  }
  if (a.size() != b.size()) {
    const auto& longer = a.size() > b.size() ? a : b;
    std::printf("journals agree on the first %zu event(s); %s has %zu "
                "extra, first: [interval %4d] %s\n",
                common, a.size() > b.size() ? "a" : "b",
                longer.size() - common, longer[common].interval,
                describe(longer[common]).c_str());
    return 1;
  }
  std::printf("journals identical (%zu event(s))\n", a.size());
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const std::vector<JournalEvent> events = load_journal(in_path);
  const std::string out_bytes = ends_with(out_path, ".jnl")
                                    ? obs::journal_encode(events)
                                    : obs::journal_to_jsonl(events);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + out_path);
  out.write(out_bytes.data(),
            static_cast<std::streamsize>(out_bytes.size()));
  if (!out) throw std::runtime_error("error writing " + out_path);
  std::printf("%zu event(s) -> %s\n", events.size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "validate" && argc == 3) return cmd_validate(argv[2]);
    if (command == "filter")
      return cmd_filter(argv[2], argc - 3, argv + 3);
    if (command == "aggregate")
      return cmd_aggregate(argv[2], argc - 3, argv + 3);
    if (command == "chain" && argc >= 4)
      return cmd_chain(argv[2], argc - 3, argv + 3);
    if (command == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
    if (command == "convert" && argc == 4)
      return cmd_convert(argv[2], argv[3]);
  } catch (const obs::JournalError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
