// Quickstart: partition a DNN between a mobile client and an edge server,
// plan the efficiency-ordered upload, and replay queries through a cold
// start — the core PerDNN workflow in ~60 lines.
#include <cstdio>

#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;

  // 1. Set up a session: Inception-21k on an ODROID-class client offloading
  //    to a Titan-Xp-class edge server over lab Wi-Fi (35 Mbps up).
  OffloadingSession::Options options;
  options.model = ModelName::kInception;
  options.server_load = 1;
  options.profiling.max_clients = 4;     // small sweep keeps startup quick
  options.profiling.samples_per_level = 3;
  OffloadingSession session(options);

  const DnnModel& model = session.model();
  std::printf("model: %s — %d layers, %.1f MB weights, %.2f GFLOPs\n",
              model.name().c_str(), model.num_layers(),
              bytes_to_mb(model.total_weight_bytes()),
              model.total_flops() / 1e9);
  std::printf("client-only latency: %.3f s\n", session.local_latency());

  // 2. Derive the optimal partitioning plan (GPU-aware estimates feed the
  //    shortest-path search).
  const PartitionPlan plan = session.best_plan();
  std::printf("best plan: %d/%d layers on the server, %.1f MB server-side, "
              "predicted latency %.3f s\n",
              plan.num_server_layers(), model.num_layers(),
              bytes_to_mb(plan.server_bytes(model)), plan.latency);

  // 3. Efficiency-ordered upload schedule: which layers to send first.
  const UploadSchedule schedule = session.upload_schedule(plan);
  std::printf("upload schedule: %zu layers, %.1f MB total; first 12 MB covers "
              "%zu layers\n",
              schedule.order.size(), bytes_to_mb(schedule.total_bytes()),
              schedule.prefix_count(mb_to_bytes(12)));

  // 4. Replay queries through a cold start (nothing at the server yet,
  //    incremental upload in the background — the IONN baseline)...
  ReplayConfig replay_config;
  replay_config.max_queries = 40;
  const ReplayResult cold = session.replay(schedule, /*initial_bytes=*/0,
                                           replay_config);
  // ...and through a warm start after proactive migration (all layers
  // already present — PerDNN after a hit).
  const ReplayResult warm =
      session.replay(schedule, schedule.total_bytes(), replay_config);

  std::printf("cold start: first query %.3f s, peak %.3f s, upload done at "
              "%.1f s\n",
              cold.queries.front().latency, cold.peak_latency(),
              cold.upload_completed_at);
  std::printf("warm start: first query %.3f s, peak %.3f s\n",
              warm.queries.front().latency, warm.peak_latency());
  std::printf("queries finished in the first 20 s: cold=%d warm=%d\n",
              cold.queries_completed_by(20.0), warm.queries_completed_by(20.0));
  return 0;
}
