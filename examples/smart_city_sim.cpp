// Smart-city deployment study: a fleet of mobile users offloading a DNN to
// pervasive edge servers, driven end-to-end through the public simulation
// API. Builds the world (trains the GPU-aware estimator and the SVR mobility
// predictor), runs the IONN baseline, PerDNN, and the oracle, and prints a
// small capacity-planning report.
//
// Usage: smart_city_sim [mobilenet|inception|resnet] [campus|urban]
#include <cstdio>
#include <cstring>

#include "mobility/trace_gen.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;

ModelName parse_model(const char* arg) {
  if (std::strcmp(arg, "mobilenet") == 0) return ModelName::kMobileNet;
  if (std::strcmp(arg, "resnet") == 0) return ModelName::kResNet;
  return ModelName::kInception;
}

}  // namespace

int main(int argc, char** argv) {
  const ModelName model = parse_model(argc > 1 ? argv[1] : "inception");
  const bool urban = argc > 2 && std::strcmp(argv[2], "urban") == 0;

  // Trace cohorts: one to train the mobility predictor, one to replay.
  std::vector<Trajectory> train;
  std::vector<Trajectory> test;
  if (urban) {
    UrbanTraceConfig config;
    config.num_users = 60;
    config.duration = 3600.0;
    config.sample_interval = 20.0;
    config.seed = 11;
    train = generate_urban_traces(config);
    config.seed = 22;
    test = generate_urban_traces(config);
  } else {
    CampusTraceConfig config;
    config.num_users = 25;
    config.duration = 2.0 * 3600.0;
    config.sample_interval = 20.0;
    config.seed = 11;
    train = generate_campus_traces(config);
    config.seed = 22;
    test = generate_campus_traces(config);
  }

  SimulationConfig config;
  config.model = model;
  config.migration_radius_m = 100.0;
  config.seed = 33;
  std::printf("building world: %s, %s traces, %zu replayed users...\n",
              model_name_str(model), urban ? "urban" : "campus", test.size());
  const SimulationWorld world = build_world(config, train, test);
  std::printf("%d edge servers allocated; model %.1f MB; interval %.0f s\n\n",
              world.servers.num_servers(),
              bytes_to_mb(world.model.total_weight_bytes()), world.interval);

  struct Row {
    const char* label;
    MigrationPolicy policy;
  };
  for (const Row row : {Row{"IONN baseline", MigrationPolicy::kNone},
                        Row{"PerDNN", MigrationPolicy::kProactive},
                        Row{"Optimal oracle", MigrationPolicy::kOptimal}}) {
    SimulationConfig run = config;
    run.policy = row.policy;
    const SimulationMetrics metrics = run_simulation(run, world);
    std::printf("%-16s cold-window queries: %-8lld hit ratio: %5.1f%%  "
                "migrated: %.0f MB  peak backhaul: %.0f Mbps\n",
                row.label, metrics.cold_window_queries,
                metrics.hit_ratio() * 100.0,
                bytes_to_mb(metrics.total_migrated_bytes),
                metrics.peak_uplink_mbps);
  }

  std::printf("\ncapacity planning: a deployment needs wired backhaul only "
              "at servers whose peak\nexceeds wireless capacity — see "
              "bench_backhaul and bench_fig10_fractional for the\nfull "
              "study, including fractional migration for the crowded "
              "ones.\n");
  return 0;
}
