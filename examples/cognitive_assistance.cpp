// Mobile cognitive assistance (the paper's motivating application, after
// Ha et al.): smart glasses continuously recognise objects for a visually
// impaired user with ResNet-50, issuing a query 0.5 s after the previous
// answer. The user walks from the coverage of one edge server into another;
// we compare the session with and without PerDNN's proactive migration and
// report the metric a user feels: recognition answers that arrive too late.
#include <cstdio>

#include "core/perdnn.hpp"

namespace {

using namespace perdnn;

/// Answers slower than this feel broken in a guidance app (object already
/// passed by). Purely for reporting; pick what your app tolerates.
constexpr Seconds kDeadline = 0.6;

struct SessionStats {
  int total = 0;
  int late = 0;
  Seconds worst = 0.0;
};

SessionStats walk_through(const OffloadingSession& session,
                          const UploadSchedule& schedule,
                          Bytes migrated_ahead, int queries_per_server) {
  ReplayConfig config;
  config.max_queries = queries_per_server;
  SessionStats stats;
  // Two server visits: the first is always cold (the user appeared from
  // nowhere); at the second, `migrated_ahead` bytes arrived ahead of them.
  for (const Bytes initial : {Bytes{0}, migrated_ahead}) {
    const ReplayResult result = session.replay(schedule, initial, config);
    for (const QueryRecord& q : result.queries) {
      ++stats.total;
      if (q.latency > kDeadline) ++stats.late;
      stats.worst = std::max(stats.worst, q.latency);
    }
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("mobile cognitive assistance: ResNet-50 object recognition on "
              "smart glasses,\nwalking between two edge servers\n\n");

  OffloadingSession::Options options;
  options.model = ModelName::kResNet;
  options.profiling.max_clients = 4;
  options.profiling.samples_per_level = 3;
  OffloadingSession session(options);
  const PartitionPlan plan = session.best_plan();
  const UploadSchedule schedule =
      session.upload_schedule(plan, UploadEnumeration::kAnchored);

  std::printf("on-device recognition latency: %.2f s (unusable for guidance)\n",
              session.local_latency());
  std::printf("offloaded latency at an idle server: %.2f s\n\n", plan.latency);

  struct Scenario {
    const char* label;
    Bytes migrated;
  };
  const Scenario scenarios[] = {
      {"IONN: nothing migrated ahead", 0},
      {"PerDNN, fractional (32 MB ahead)", mb_to_bytes(32.0)},
      {"PerDNN, full proactive migration", schedule.total_bytes()},
  };
  std::printf("%-36s %8s %10s %12s\n", "scenario", "answers",
              "late (>0.6s)", "worst (s)");
  for (const Scenario& s : scenarios) {
    const SessionStats stats = walk_through(session, schedule, s.migrated, 30);
    std::printf("%-36s %8d %10d %12.2f\n", s.label, stats.total, stats.late,
                stats.worst);
  }
  std::printf("\nthe first server visit is cold in every scenario; proactive "
              "migration removes\nthe second spike, which is the one users "
              "hit every time they cross a cell edge\n");
  return 0;
}
