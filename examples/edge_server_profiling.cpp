// Edge-server bring-up: what an operator runs when adding a GPU node to the
// fleet. Sweeps concurrency with the profiler (the perf_client analogue),
// trains the GPU-aware random-forest estimator from the records, and
// sanity-checks it: per-load latency estimates for a representative conv
// layer, and how the partitioner's server choice responds to load.
#include <cstdio>

#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;
  std::printf("edge-server bring-up: profiling a Titan-Xp-class node\n\n");

  const GpuContentionModel gpu(titan_xp_profile());
  const DnnModel model = build_resnet50();
  const DnnModel* models[] = {&model};

  // 1. Concurrency sweep (offline, once per server).
  ConcurrencyProfiler profiler(&gpu, Rng(1));
  ProfilerConfig config;
  config.max_clients = 12;
  config.samples_per_level = 6;
  const auto records = profiler.profile_models(models, config);
  std::printf("profiled %zu (layer, load) samples across 1..%d concurrent "
              "clients\n",
              records.size(), config.max_clients);

  // 2. Train the estimator the master server will query.
  RandomForestEstimator estimator;
  Rng rng(2);
  estimator.train(records, rng);

  // 3. Sanity check: a mid-network conv layer under growing load.
  const LayerSpec* conv = nullptr;
  for (const LayerSpec& layer : model.layers())
    if (layer.kind == LayerKind::kConv && layer.out_height == 14) conv = &layer;
  Bytes conv_input = 0;
  for (LayerId id = 0; id < model.num_layers(); ++id)
    if (&model.layer(id) == conv) conv_input = model.input_bytes(id);

  std::printf("\n%-8s %-14s %-14s %-10s\n", "clients", "estimated (us)",
              "true (us)", "error %");
  for (int load = 1; load <= 12; load += 2) {
    Rng stats_rng(100 + load);
    const GpuStats stats =
        gpu.stats_for_load(load, static_cast<double>(load), stats_rng);
    const Seconds estimated = estimator.estimate(*conv, conv_input, stats);
    const Seconds truth = gpu.expected_layer_time(
        *conv, conv_input, static_cast<double>(load));
    std::printf("%-8d %-14.1f %-14.1f %-10.1f\n", load, estimated * 1e6,
                truth * 1e6, 100.0 * (estimated - truth) / truth);
  }

  // 4. Effect on planning: the same client sees different best plans as the
  //    server fills up.
  const DnnProfile client = profile_on_client(model, odroid_xu4_profile());
  std::printf("\n%-8s %-16s %-14s\n", "clients", "plan latency (s)",
              "server layers");
  for (int load = 1; load <= 12; load += 2) {
    Rng stats_rng(200 + load);
    const GpuStats stats =
        gpu.stats_for_load(load, static_cast<double>(load), stats_rng);
    PartitionContext context;
    context.model = &model;
    context.client_profile = &client;
    for (LayerId id = 0; id < model.num_layers(); ++id)
      context.server_time.push_back(
          estimator.estimate(model.layer(id), model.input_bytes(id), stats));
    const PartitionPlan plan = compute_best_plan(context);
    std::printf("%-8d %-16.3f %-14d\n", load, plan.latency,
                plan.num_server_layers());
  }
  std::printf("\ncrowded servers quote longer latencies, so the master "
              "steers new clients to\nidle neighbours — the load balancing "
              "of Section 3.C falls out of the estimates\n");
  return 0;
}
