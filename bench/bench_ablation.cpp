// Ablation studies (ours, beyond the paper's figures):
//  1. Estimator choice inside the partitioner — the true latency of the plan
//     each estimator induces, and how far each estimator's *predicted*
//     latency strays from the truth (the planning signal the master server
//     acts on: server selection ranks servers by this number, so large
//     prediction error means bad server choices even when the cut survives).
//  2. Upload-order policy — latency-vs-bytes profiles for the efficiency
//     order (exact/anchored) against front-to-back and back-to-front upload.
//  3. Shortest-path vs min-cut partitioners across server loads.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/perdnn.hpp"

namespace {

using namespace perdnn;

void estimator_ablation() {
  std::printf("\n--- 1. partitioning with each estimator (Inception) ---\n");
  std::printf("true latency of the induced plan | the estimator's own "
              "latency prediction\n");

  const GpuContentionModel gpu(titan_xp_profile());
  const DnnModel model = build_inception21k();
  const DnnProfile client = profile_on_client(model, odroid_xu4_profile());

  ConcurrencyProfiler profiler(&gpu, Rng(5));
  const DnnModel* models[] = {&model};
  ProfilerConfig prof_config;
  prof_config.max_clients = 16;
  prof_config.samples_per_level = 4;
  const auto records = profiler.profile_models(models, prof_config);

  Rng rng(7);
  NeurosurgeonEstimator ll;
  LoadAwareLinearEstimator ll_load;
  RandomForestEstimator rf;
  ll.train(records, rng);
  ll_load.train(records, rng);
  rf.train(records, rng);

  TextTable table({"server load", "oracle", "RF+load", "LL+load", "LL"});
  // Estimators are trained; each load level is an independent read-only
  // sweep over them. Fan the rows out, print in load order.
  const int loads[] = {1, 4, 8, 12, 16};
  const auto row_cells =
      par::parallel_map(std::size(loads), [&](std::size_t l) {
        const int load = loads[l];
        Rng stats_rng(9000 + load);
        const GpuStats stats =
            gpu.stats_for_load(load, static_cast<double>(load), stats_rng);

        PartitionContext truth;
        truth.model = &model;
        truth.client_profile = &client;
        for (LayerId id = 0; id < model.num_layers(); ++id)
          truth.server_time.push_back(
              gpu.expected_layer_time(model.layer(id), model.input_bytes(id),
                                      static_cast<double>(load)));

        auto cell = [&](const LayerTimeEstimator* estimator) {
          PartitionContext ctx = truth;
          if (estimator != nullptr) {
            ctx.server_time.clear();
            for (LayerId id = 0; id < model.num_layers(); ++id)
              ctx.server_time.push_back(estimator->estimate(
                  model.layer(id), model.input_bytes(id), stats));
          }
          const PartitionPlan plan = compute_best_plan(ctx);
          std::vector<bool> mask(plan.location.size());
          for (std::size_t i = 0; i < mask.size(); ++i)
            mask[i] = plan.location[i] == ExecLocation::kServer;
          const Seconds true_latency = plan_latency(truth, mask);
          return TextTable::num(true_latency, 3) + " | " +
                 TextTable::num(plan.latency, 3);
        };

        return std::vector<std::string>{
            TextTable::num(static_cast<long long>(load)), cell(nullptr),
            cell(&rf), cell(&ll_load), cell(&ll)};
      });
  for (const auto& cells : row_cells) table.add_row(cells);
  std::printf("%s", table.to_string().c_str());
  std::printf("(reading: plans are robust here, but LL's predicted latency "
              "diverges under load,\n which corrupts the master's choice "
              "*between* servers)\n");
}

void upload_order_ablation() {
  std::printf("\n--- 2. upload order: latency after sending the first X MB "
              "(Inception) ---\n");
  OffloadingSession::Options options;
  options.model = ModelName::kInception;
  options.profiling.max_clients = 4;
  options.profiling.samples_per_level = 3;
  OffloadingSession session(options);
  const PartitionPlan plan = session.best_plan();
  const PartitionContext context = session.context(true);

  const UploadSchedule exact =
      session.upload_schedule(plan, UploadEnumeration::kExact);
  const UploadSchedule anchored =
      session.upload_schedule(plan, UploadEnumeration::kAnchored);

  auto sequential = [&](bool reversed) {
    UploadSchedule schedule;
    std::vector<LayerId> order = plan.server_layers();
    if (reversed) std::reverse(order.begin(), order.end());
    Bytes acc = 0;
    for (LayerId id : order) {
      schedule.order.push_back(id);
      acc += session.model().layer(id).weight_bytes;
      schedule.cumulative_bytes.push_back(acc);
    }
    return schedule;
  };
  const UploadSchedule front = sequential(false);
  const UploadSchedule back = sequential(true);

  TextTable table({"sent MB", "efficiency (exact)", "efficiency (anchored)",
                   "front-to-back", "back-to-front"});
  for (double mb : {0.0, 4.0, 8.0, 12.0, 24.0, 48.0, 96.0, 125.0}) {
    const Bytes bytes = mb_to_bytes(mb);
    auto latency = [&](const UploadSchedule& schedule) {
      return TextTable::num(
          plan_latency(context,
                       schedule.uploaded_after(session.model(), bytes)),
          3);
    };
    table.add_row({TextTable::num(mb, 0), latency(exact), latency(anchored),
                   latency(front), latency(back)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(Inception's efficiency order coincides with front-to-back — "
              "its dense convs lead;\n back-to-front wastes the whole upload "
              "on the cheap 21k-way head)\n");
}

void partitioner_ablation() {
  std::printf("\n--- 3. shortest-path vs min-cut across server loads "
              "(sum-model objective) ---\n");
  TextTable table({"model", "load", "shortest-path (s)", "min-cut (s)",
                   "server layers sp/mc"});
  // Every (model, load) combination builds its own session: embarrassingly
  // parallel, printed in sweep order.
  struct Combo {
    ModelName name;
    int load;
  };
  std::vector<Combo> combos;
  for (ModelName name :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet})
    for (int load : {1, 8, 16}) combos.push_back({name, load});
  const auto row_cells =
      par::parallel_map(combos.size(), [&](std::size_t c) {
        OffloadingSession::Options options;
        options.model = combos[c].name;
        options.server_load = combos[c].load;
        options.profiling.max_clients = 16;
        options.profiling.samples_per_level = 2;
        OffloadingSession session(options);
        const PartitionContext context = session.context(true);
        const PartitionPlan sp = compute_best_plan(context);
        const PartitionPlan mc = compute_mincut_plan(context);
        char counts[32];
        std::snprintf(counts, sizeof counts, "%d/%d", sp.num_server_layers(),
                      mc.num_server_layers());
        return std::vector<std::string>{
            model_name_str(combos[c].name),
            TextTable::num(static_cast<long long>(combos[c].load)),
            TextTable::num(sum_model_latency(context, sp), 3),
            TextTable::num(mc.latency, 3), counts};
      });
  for (const auto& cells : row_cells) table.add_row(cells);
  std::printf("%s", table.to_string().c_str());
}

void zoo_plan_shapes() {
  std::printf("\n--- 4. plan shape across the extended model zoo "
              "(uncontended server, lab Wi-Fi) ---\n");
  TextTable table({"model", "MB", "GFLOPs", "local (s)", "plan (s)",
                   "speedup", "server MB"});
  const DnnModel models[] = {build_mobilenet_v1(), build_inception21k(),
                             build_resnet50(), build_alexnet(),
                             build_vgg16()};
  const auto row_cells =
      par::parallel_map(std::size(models), [&](std::size_t m) {
        const DnnModel& model = models[m];
        const DnnProfile client =
            profile_on_client(model, odroid_xu4_profile());
        const DnnProfile server = profile_on_client(model, titan_xp_profile());
        PartitionContext context;
        context.model = &model;
        context.client_profile = &client;
        context.server_time = server.client_time;
        const PartitionPlan plan = compute_best_plan(context);
        const Seconds local = local_only_latency(context);
        return std::vector<std::string>{
            model.name(),
            TextTable::num(bytes_to_mb(model.total_weight_bytes()), 0),
            TextTable::num(model.total_flops() / 1e9, 1),
            TextTable::num(local, 3), TextTable::num(plan.latency, 3),
            TextTable::num(local / plan.latency, 1) + "x",
            TextTable::num(bytes_to_mb(plan.server_bytes(model)), 0)};
      });
  for (const auto& cells : row_cells) table.add_row(cells);
  std::printf("%s", table.to_string().c_str());
}


void energy_ablation() {
  std::printf("\n--- 5. latency-optimal vs energy-optimal plans (client "
              "joules per query) ---\n");
  const EnergyProfile energy = odroid_energy_profile();
  TextTable table({"model", "local J", "latency plan J", "energy plan J",
                   "latency plan s", "energy plan s"});
  const DnnModel models[] = {build_mobilenet_v1(), build_inception21k(),
                             build_resnet50(), build_vgg16()};
  const auto row_cells =
      par::parallel_map(std::size(models), [&](std::size_t m) {
        const DnnModel& model = models[m];
        const DnnProfile client =
            profile_on_client(model, odroid_xu4_profile());
        const DnnProfile server = profile_on_client(model, titan_xp_profile());
        PartitionContext context;
        context.model = &model;
        context.client_profile = &client;
        context.server_time = server.client_time;

        PartitionPlan local;
        local.location.assign(static_cast<std::size_t>(model.num_layers()),
                              ExecLocation::kClient);
        const PartitionPlan latency_plan = compute_best_plan(context);
        const PartitionPlan energy_plan =
            compute_energy_best_plan(context, energy);
        return std::vector<std::string>{
            model.name(),
            TextTable::num(plan_energy_joules(context, local, energy), 2),
            TextTable::num(plan_energy_joules(context, latency_plan, energy),
                           2),
            TextTable::num(plan_energy_joules(context, energy_plan, energy),
                           2),
            TextTable::num(latency_plan.latency, 3),
            TextTable::num(energy_plan.latency, 3)};
      });
  for (const auto& cells : row_cells) table.add_row(cells);
  std::printf("%s", table.to_string().c_str());
  std::printf("(offloading saves the wearable's battery as well as time; "
              "the two objectives pick\n nearly the same cut here, as in "
              "NeuroSurgeon's findings)\n");
}

}  // namespace

int main(int argc, char** argv) {
  par::init_threads_from_cli(argc, argv);
  std::printf("=== Ablation benches (design choices called out in DESIGN.md) "
              "===\n");
  estimator_ablation();
  upload_order_ablation();
  partitioner_ablation();
  zoo_plan_shapes();
  energy_ablation();
  return 0;
}
