// Table III — accuracy of edge-server prediction for Markov / SVR / RNN on
// the KAIST-like and Geolife-like datasets. Accuracy is over non-futile
// predictions only; top-n means the actually-visited next server is among
// the n predicted candidates; MAE is the coordinate error of SVR/RNN.
#include <cstdio>
#include <iterator>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "datasets.hpp"
#include "geo/server_map.hpp"
#include "mobility/evaluate.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

void run_dataset(const DatasetPair& data) {
  ServerMap servers(50.0);
  servers.allocate_for_visits(all_points(data.test));
  std::printf("\n--- %s: %zu test users, %d edge servers ---\n", data.name,
              data.test.size(), servers.num_servers());

  constexpr int kN = 5;  // trajectory length, as chosen in Fig 6
  MarkovPredictor markov(kN, &servers);
  SvrPredictor svr(kN);
  RnnPredictor rnn(kN, /*hidden_dim=*/16, /*epochs=*/40);
  MobilityPredictor* predictors[] = {&markov, &svr, &rnn};

  TextTable table({"predictor", "top-1 %", "top-2 %", "MAE (m)",
                   "futile ratio", "non-futile n"});
  // Each predictor trains and evaluates independently (own Rng(23), shared
  // read-only datasets); fan them out and print rows in predictor order.
  const auto evals =
      par::parallel_map(std::size(predictors), [&](std::size_t p) {
        Rng rng(23);
        predictors[p]->fit(data.train, rng);
        return evaluate_predictor(*predictors[p], data.test, servers);
      });
  for (std::size_t p = 0; p < evals.size(); ++p) {
    const PredictorEvaluation& eval = evals[p];
    table.add_row(
        {predictors[p]->name(),
         TextTable::num(eval.top1_accuracy() * 100.0, 1),
         TextTable::num(eval.top2_accuracy() * 100.0, 1),
         TextTable::num(eval.mae_all_m, 1),
         TextTable::num(eval.futile_ratio(), 2),
         TextTable::num(static_cast<long long>(eval.non_futile()))});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  par::init_threads_from_cli(argc, argv);
  std::printf("=== Table III: accuracy of edge-server prediction ===\n");
  std::printf("paper shape: Markov << SVR ~= RNN; top-2 well above top-1;\n"
              "KAIST top-1 low (users rarely move), Geolife top-1 higher\n");
  run_dataset(kaist_like(/*interval=*/20.0, /*duration=*/4.0 * 3600.0));
  run_dataset(geolife_like(/*interval=*/20.0, /*duration=*/5400.0));
  return 0;
}
