// Fig 4 — execution-time estimation error under GPU contention.
//
// Left: MAE of the estimated conv-layer execution time vs the number of
// concurrent clients, for the NeuroSurgeon-style hyperparameter-only LL
// baseline, LL with GPU-load features, and PerDNN's random forest.
// Right: impurity importances of the random forest's features — the paper
// found the workload features dominate the layer hyperparameters.
#include <cstdio>

#include "common/table.hpp"
#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;
  std::printf("=== Fig 4: layer execution-time estimation MAE vs server load "
              "(conv layers) ===\n");

  const GpuContentionModel gpu(titan_xp_profile());
  const DnnModel mobilenet = build_mobilenet_v1();
  const DnnModel inception = build_inception21k();
  const DnnModel resnet = build_resnet50();
  const DnnModel* models[] = {&mobilenet, &inception, &resnet};

  // Training and held-out sweeps from independent profiler streams (the
  // paper trains offline with perf_client, evaluates on fresh requests).
  ProfilerConfig config;
  config.max_clients = 16;
  config.samples_per_level = 6;
  config.include_pointwise = false;  // Fig 4 studies heavy compute layers
  ConcurrencyProfiler train_profiler(&gpu, Rng(11));
  ConcurrencyProfiler test_profiler(&gpu, Rng(22));
  const auto train_records = train_profiler.profile_models(models, config);
  config.samples_per_level = 3;
  const auto test_records = test_profiler.profile_models(models, config);
  std::printf("training records: %zu   held-out records: %zu\n\n",
              train_records.size(), test_records.size());

  Rng rng(33);
  NeurosurgeonEstimator ll;
  LoadAwareLinearEstimator ll_load;
  RandomForestEstimator rf;
  GradientBoostedEstimator gbt;  // our extension beyond the paper's trio
  ll.train(train_records, rng);
  ll_load.train(train_records, rng);
  rf.train(train_records, rng);
  gbt.train(train_records, rng);

  TextTable table({"# clients", "LL (us)", "LL w/ load (us)",
                   "RF w/ load (us)", "GBT w/ load (us)"});
  for (int clients : {1, 2, 4, 8, 12, 16}) {
    const double mae_ll =
        estimator_mae(ll, test_records, clients, LayerKind::kConv) * 1e6;
    const double mae_ll_load =
        estimator_mae(ll_load, test_records, clients, LayerKind::kConv) * 1e6;
    const double mae_rf =
        estimator_mae(rf, test_records, clients, LayerKind::kConv) * 1e6;
    const double mae_gbt =
        estimator_mae(gbt, test_records, clients, LayerKind::kConv) * 1e6;
    table.add_row({TextTable::num(static_cast<long long>(clients)),
                   TextTable::num(mae_ll, 1), TextTable::num(mae_ll_load, 1),
                   TextTable::num(mae_rf, 1), TextTable::num(mae_gbt, 1)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\n--- RF feature importance (conv forest) ---\n");
  const Vector importance = rf.feature_importance(LayerKind::kConv);
  const auto names = combined_feature_names();
  TextTable imp_table({"feature", "importance"});
  double load_total = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    imp_table.add_row({names[i], TextTable::num(importance[i], 3)});
    if (i >= layer_feature_names().size()) load_total += importance[i];
  }
  std::printf("%s", imp_table.to_string().c_str());
  std::printf("total importance of workload features: %.3f (paper: workload "
              "features dominate)\n",
              load_total);
  return 0;
}
