// Fig 1 — the cold-start problem. A client runs 40 consecutive Inception
// queries (0.5 s apart) under IONN-style incremental offloading and switches
// to a fresh edge server at query 21: execution time collapses as layers
// upload, then spikes back to on-device latency at the switch.
#include <cstdio>

#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;
  std::printf("=== Fig 1: DNN execution time across an edge-server change "
              "(Inception, IONN baseline) ===\n");
  std::printf("seed=7  query gap=0.5s  uplink=35 Mbps\n\n");

  OffloadingSession::Options options;
  options.model = ModelName::kInception;
  options.profiling.max_clients = 4;
  options.profiling.samples_per_level = 3;
  OffloadingSession session(options);

  const UploadSchedule schedule = session.upload_schedule(
      session.best_plan(), UploadEnumeration::kAnchored);

  ReplayConfig config;
  config.max_queries = 20;
  // Server 1: cold start, 20 queries.
  const ReplayResult first = session.replay(schedule, 0, config);
  // Server 2: the client moved; IONN uploads from scratch again.
  const ReplayResult second = session.replay(schedule, 0, config);

  std::printf("query  exec_time_s\n");
  int query_index = 1;
  for (const auto& q : first.queries)
    std::printf("%5d  %.3f\n", query_index++, q.latency);
  std::printf("---- client changes edge server ----\n");
  for (const auto& q : second.queries)
    std::printf("%5d  %.3f\n", query_index++, q.latency);

  std::printf("\nfirst-query latency (cold): %.3f s\n",
              first.queries.front().latency);
  std::printf("steady-state latency:        %.3f s\n",
              first.queries.back().latency);
  std::printf("spike at server change:      %.3f s (%.1fx the steady state)\n",
              second.queries.front().latency,
              second.queries.front().latency / first.queries.back().latency);
  return 0;
}
