// Shared dataset definitions for the benchmark harness, so every bench that
// references "KAIST" or "Geolife" sees the same synthetic worlds.
//
// KAIST-like: 31 replayed campus pedestrians (plus a disjoint training
// cohort), 1.5 x 2 km, ~0.5 m/s. Geolife-like: 138 replayed urban users,
// 7.2 x 5.6 km, ~3.9 m/s, generated at Geolife's dense 5 s sampling and
// resampled to the simulation interval t.
#pragma once

#include "mobility/trace_gen.hpp"

namespace perdnn::bench {

struct DatasetPair {
  std::vector<Trajectory> train;
  std::vector<Trajectory> test;
  const char* name;
};

inline DatasetPair kaist_like(Seconds interval = 20.0,
                              Seconds duration = 6.0 * 3600.0) {
  CampusTraceConfig train_config;
  train_config.num_users = 31;
  train_config.sample_interval = interval;
  train_config.duration = duration;
  train_config.seed = 1001;
  CampusTraceConfig test_config = train_config;
  test_config.seed = 2002;
  return {generate_campus_traces(train_config),
          generate_campus_traces(test_config), "KAIST"};
}

/// Geolife-like traces at the dense base rate (5 s); resample with
/// Trajectory::resampled(stride) for coarser time intervals.
inline DatasetPair geolife_like_base(Seconds duration = 2.0 * 3600.0) {
  UrbanTraceConfig train_config;
  train_config.num_users = 138;
  train_config.duration = duration;
  train_config.seed = 3003;
  UrbanTraceConfig test_config = train_config;
  test_config.seed = 4004;
  return {generate_urban_traces(train_config),
          generate_urban_traces(test_config), "Geolife"};
}

inline std::vector<Trajectory> resample_all(
    const std::vector<Trajectory>& traces, int stride) {
  std::vector<Trajectory> out;
  out.reserve(traces.size());
  for (const auto& t : traces) out.push_back(t.resampled(stride));
  return out;
}

inline DatasetPair geolife_like(Seconds interval = 20.0,
                                Seconds duration = 2.0 * 3600.0) {
  DatasetPair base = geolife_like_base(duration);
  const int stride = static_cast<int>(interval / 5.0);
  return {resample_all(base.train, stride), resample_all(base.test, stride),
          "Geolife"};
}

}  // namespace perdnn::bench
