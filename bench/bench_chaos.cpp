// Chaos sweep: graceful degradation under scripted fault schedules.
//
// Builds one KAIST-like world, then replays the PerDNN policy under seeded
// random fault plans of increasing intensity (crashes, backhaul outages,
// telemetry dropouts, client churn — all four classes scaled together) and
// reports how availability, the offloaded-query share, query latency and
// the deferred-migration backlog degrade. Intensity 0 is the fault-free
// baseline and must match a plain run exactly.
//
//   bench_chaos [--model mobilenet|inception|resnet] [--seed N]
//               [--plan FILE] [--journal-out FILE] [--json] [--threads N]
//   bench_chaos --sharded [--clients N] [--tiles-x N] [--tiles-y N]
//               [--intervals N] [--shards N] [--json-out FILE] [--threads N]
//
// --plan replaces the sweep with a single run of the scripted JSON plan.
// --journal-out (requires --plan) writes that run's event journal as JSONL
// (binary when FILE ends in .jnl) so tools/perdnn_obs can reconstruct any
// client's causal chain through the scripted faults. --json emits
// machine-readable rows instead of the text table. Unknown flags are hard
// errors (exit 2).
//
// --sharded switches to the city-scale SoA engine and runs the fixed
// chaos-at-scale scenario set (zero-fault, mid/high random fault schedules,
// and an admission-controlled flash crowd), emitting the BENCH_chaos_scale
// artifact that tools/check_bench_regression.sh gates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "datasets.hpp"
#include "faults/fault_plan.hpp"
#include "obs/json.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

struct Args {
  ModelName model = ModelName::kMobileNet;
  std::uint64_t seed = 97;
  std::string plan_file;
  std::string journal_out;
  bool json = false;
  // --sharded mode.
  bool sharded = false;
  int clients = 1'000'000;
  int tiles_x = 100;
  int tiles_y = 100;
  int intervals = 20;
  int shards = 16;
  std::string json_out;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_chaos [--model mobilenet|inception|resnet] "
               "[--seed N] [--plan FILE] [--journal-out FILE] [--json] "
               "[--threads N]\n"
               "       bench_chaos --sharded [--clients N] [--tiles-x N] "
               "[--tiles-y N] [--intervals N] [--shards N] [--json-out FILE] "
               "[--threads N]\n");
  return 2;
}

bool int_flag(int argc, char** argv, int& i, int* out) {
  if (i + 1 >= argc) return false;
  char* end = nullptr;
  const long v = std::strtol(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0' || v <= 0) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (name == "--json") {
      args->json = true;
    } else if (name == "--model") {
      const char* value = next_value();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --model needs a value\n");
        return false;
      }
      if (std::strcmp(value, "mobilenet") == 0)
        args->model = ModelName::kMobileNet;
      else if (std::strcmp(value, "inception") == 0)
        args->model = ModelName::kInception;
      else if (std::strcmp(value, "resnet") == 0)
        args->model = ModelName::kResNet;
      else {
        std::fprintf(stderr, "error: unknown model '%s'\n", value);
        return false;
      }
    } else if (name == "--seed") {
      const char* value = next_value();
      char* end = nullptr;
      const unsigned long long seed =
          value != nullptr ? std::strtoull(value, &end, 10) : 0;
      if (value == nullptr || end == value || *end != '\0') {
        std::fprintf(stderr, "error: --seed needs an integer\n");
        return false;
      }
      args->seed = seed;
    } else if (name == "--plan") {
      const char* value = next_value();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --plan needs a file\n");
        return false;
      }
      args->plan_file = value;
    } else if (name == "--journal-out") {
      const char* value = next_value();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --journal-out needs a file\n");
        return false;
      }
      args->journal_out = value;
    } else if (name == "--sharded") {
      args->sharded = true;
    } else if (name == "--clients") {
      if (!int_flag(argc, argv, i, &args->clients)) return false;
    } else if (name == "--tiles-x") {
      if (!int_flag(argc, argv, i, &args->tiles_x)) return false;
    } else if (name == "--tiles-y") {
      if (!int_flag(argc, argv, i, &args->tiles_y)) return false;
    } else if (name == "--intervals") {
      if (!int_flag(argc, argv, i, &args->intervals)) return false;
    } else if (name == "--shards") {
      if (!int_flag(argc, argv, i, &args->shards)) return false;
    } else if (name == "--json-out") {
      const char* value = next_value();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --json-out needs a file\n");
        return false;
      }
      args->json_out = value;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

struct ScenarioResult {
  std::string label;
  std::size_t events = 0;
  SimulationMetrics metrics;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
};

ScenarioResult run_scenario(const std::string& label,
                            const SimulationConfig& base,
                            const SimulationWorld& world,
                            const FaultPlan& plan,
                            obs::Journal* journal = nullptr) {
  SimulationConfig config = base;
  config.fault_plan = plan;
  obs::Registry::global().reset();
  obs::set_enabled(true);
  ScenarioResult result;
  result.label = label;
  result.events = plan.size();
  SimulationRunOptions options;
  options.journal = journal;
  result.metrics = run_simulation(config, world, nullptr, options);
  obs::Histogram& latency =
      obs::Registry::global().histogram("sim.cold_window.query_latency_s");
  if (latency.count() > 0) {
    // quantile() is NaN on an empty histogram (a total-outage scenario can
    // serve zero edge queries); keep the JSON emittable with 0.0.
    result.p50_latency_s = latency.quantile(0.50);
    result.p99_latency_s = latency.quantile(0.99);
  }
  obs::set_enabled(false);
  return result;
}

obs::JsonValue to_json(const ScenarioResult& r) {
  using obs::JsonValue;
  std::vector<std::pair<std::string, JsonValue>> m;
  m.emplace_back("scenario", JsonValue::make_string(r.label));
  m.emplace_back("events",
                 JsonValue::make_number(static_cast<double>(r.events)));
  m.emplace_back("availability",
                 JsonValue::make_number(r.metrics.availability()));
  m.emplace_back("offload_ratio",
                 JsonValue::make_number(r.metrics.offload_ratio()));
  m.emplace_back("p50_query_latency_s",
                 JsonValue::make_number(r.p50_latency_s));
  m.emplace_back("p99_query_latency_s",
                 JsonValue::make_number(r.p99_latency_s));
  m.emplace_back("cold_window_queries",
                 JsonValue::make_number(
                     static_cast<double>(r.metrics.cold_window_queries)));
  m.emplace_back("local_fallback_queries",
                 JsonValue::make_number(
                     static_cast<double>(r.metrics.local_fallback_queries)));
  m.emplace_back("server_failures",
                 JsonValue::make_number(r.metrics.server_failures));
  m.emplace_back("client_disconnects",
                 JsonValue::make_number(r.metrics.client_disconnect_events));
  m.emplace_back("degraded_attaches",
                 JsonValue::make_number(r.metrics.degraded_attaches));
  m.emplace_back("migrations_deferred",
                 JsonValue::make_number(r.metrics.migrations_deferred));
  m.emplace_back(
      "deferred_migration_bytes",
      JsonValue::make_number(
          static_cast<double>(r.metrics.deferred_migration_bytes)));
  m.emplace_back(
      "peak_deferred_backlog_bytes",
      JsonValue::make_number(
          static_cast<double>(r.metrics.peak_deferred_backlog_bytes)));
  m.emplace_back("migrations_abandoned",
                 JsonValue::make_number(r.metrics.migrations_abandoned));
  return JsonValue::make_object(std::move(m));
}

void print_table(const std::vector<ScenarioResult>& results) {
  TextTable table({"scenario", "events", "avail %", "offload %", "p50 ms",
                   "p99 ms", "local queries", "deferred MB", "peak backlog MB",
                   "abandoned"});
  for (const ScenarioResult& r : results) {
    table.add_row(
        {r.label, TextTable::num(static_cast<long long>(r.events)),
         TextTable::num(r.metrics.availability() * 100.0, 2),
         TextTable::num(r.metrics.offload_ratio() * 100.0, 2),
         TextTable::num(r.p50_latency_s * 1e3, 1),
         TextTable::num(r.p99_latency_s * 1e3, 1),
         TextTable::num(
             static_cast<long long>(r.metrics.local_fallback_queries)),
         TextTable::num(bytes_to_mb(r.metrics.deferred_migration_bytes), 1),
         TextTable::num(bytes_to_mb(r.metrics.peak_deferred_backlog_bytes),
                        1),
         TextTable::num(
             static_cast<long long>(r.metrics.migrations_abandoned))});
  }
  std::printf("%s", table.to_string().c_str());
}

// ---------------------------------------------------------------------------
// --sharded: chaos at city scale through the SoA engine.

struct ShardScenarioResult {
  std::string label;
  SimulationMetrics metrics;
  double run_wall_s = 0.0;
  double clients_per_sec = 0.0;
  int num_intervals = 0;
  double interval_s = 0.0;
};

/// Offloaded queries served per simulated second — the goodput the
/// admission-control scenario trades shed attaches for.
double goodput_qps(const ShardScenarioResult& r) {
  const double sim_s = static_cast<double>(r.num_intervals) * r.interval_s;
  return sim_s > 0
             ? static_cast<double>(r.metrics.cold_window_queries) / sim_s
             : 0.0;
}

/// Share of attach attempts refused by admission control.
double shed_rate(const ShardScenarioResult& r) {
  const double total = static_cast<double>(r.metrics.server_changes) +
                       static_cast<double>(r.metrics.attaches_shed);
  return total > 0 ? static_cast<double>(r.metrics.attaches_shed) / total
                   : 0.0;
}

ShardScenarioResult run_shard_scenario(const std::string& label,
                                       const ShardWorldConfig& config,
                                       int shards) {
  std::printf("[%s] building world (%d clients, %d servers)...\n",
              label.c_str(), config.num_clients, config.num_servers());
  const ShardWorld world = build_shard_world(config);
  ShardRunOptions options;
  options.num_shards = shards;
  const auto start = std::chrono::steady_clock::now();
  ShardScenarioResult result;
  result.label = label;
  result.metrics = run_sharded_simulation(world, options);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  result.run_wall_s = wall.count();
  result.clients_per_sec =
      wall.count() > 0 ? static_cast<double>(config.num_clients) *
                             config.num_intervals / wall.count()
                       : 0.0;
  result.num_intervals = config.num_intervals;
  result.interval_s = config.interval_s;
  std::printf("[%s] %.2fs, availability %.4f, offload %.4f, %d shed, "
              "%d deferred, %d abandoned\n",
              label.c_str(), result.run_wall_s,
              result.metrics.availability(), result.metrics.offload_ratio(),
              result.metrics.attaches_shed, result.metrics.migrations_deferred,
              result.metrics.migrations_abandoned);
  return result;
}

std::string shard_scenario_json(const ShardScenarioResult& r) {
  char buf[1024];
  const SimulationMetrics& m = r.metrics;
  std::snprintf(
      buf, sizeof buf,
      "{\"scenario\":\"%s\",\"availability\":%.6g,\"offload_ratio\":%.6g,"
      "\"goodput_qps\":%.6g,\"shed_rate\":%.6g,\"attaches_shed\":%d,"
      "\"migrations_deferred\":%d,\"migration_retries\":%d,"
      "\"migrations_abandoned\":%d,\"peak_deferred_backlog_bytes\":%lld,"
      "\"server_failures\":%d,\"local_fallback_queries\":%lld,"
      "\"cold_window_queries\":%lld,\"clients_per_sec\":%.6g,"
      "\"run_wall_s\":%.6g}",
      r.label.c_str(), m.availability(), m.offload_ratio(), goodput_qps(r),
      shed_rate(r), m.attaches_shed, m.migrations_deferred,
      m.migration_retries, m.migrations_abandoned,
      static_cast<long long>(m.peak_deferred_backlog_bytes),
      m.server_failures, static_cast<long long>(m.local_fallback_queries),
      m.cold_window_queries, r.clients_per_sec, r.run_wall_s);
  return buf;
}

int run_sharded(const Args& args) {
  ShardWorldConfig base;
  base.model = args.model;
  base.tiles_x = args.tiles_x;
  base.tiles_y = args.tiles_y;
  base.num_clients = args.clients;
  base.num_intervals = args.intervals;
  base.offline_probability = 0.02;
  base.seed = args.seed;
  base.migration_retry = {.max_attempts = 6,
                          .initial_backoff_intervals = 1,
                          .max_backoff_intervals = 8};

  RandomFaultConfig faults;
  faults.seed = args.seed + 1;
  faults.num_servers = base.num_servers();
  faults.num_clients = base.num_clients;
  faults.num_intervals = base.num_intervals;
  faults.crash_downtime_intervals = 4;
  faults.backhaul_outage_intervals = 3;

  std::vector<ShardScenarioResult> results;
  results.push_back(run_shard_scenario("zero-fault", base, args.shards));

  for (const auto& [label, intensity] :
       {std::pair<const char*, double>{"mid-faults", 0.01},
        std::pair<const char*, double>{"high-faults", 0.03}}) {
    faults.server_crash_rate = intensity;
    faults.backhaul_degrade_rate = intensity;
    faults.telemetry_dropout_rate = intensity;
    faults.client_disconnect_rate = intensity / 5.0;
    ShardWorldConfig config = base;
    config.fault_plan = FaultPlan::random_schedule(faults);
    results.push_back(run_shard_scenario(label, config, args.shards));
  }

  {
    ShardWorldConfig config = base;
    config.flash_crowd_tiles = std::max(1, base.num_servers() / 100);
    config.flash_crowd_multiplier = 25.0;
    config.admission_max_attached =
        std::max(8, 2 * base.num_clients / base.num_servers());
    results.push_back(run_shard_scenario("flash-crowd", config, args.shards));
  }

  const std::uint64_t peak_rss = obs::peak_rss_bytes();
  std::string json = "{\"bench\":\"chaos_scale\",";
  {
    char head[256];
    std::snprintf(head, sizeof head,
                  "\"clients\":%d,\"servers\":%d,\"intervals\":%d,"
                  "\"shards\":%d,\"threads\":%d,\"scenarios\":[",
                  base.num_clients, base.num_servers(), base.num_intervals,
                  args.shards, par::num_threads());
    json += head;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json += ',';
    json += shard_scenario_json(results[i]);
  }
  {
    char tail[64];
    std::snprintf(tail, sizeof tail, "],\"peak_rss_bytes\":%llu}",
                  static_cast<unsigned long long>(peak_rss));
    json += tail;
  }
  if (!args.json_out.empty()) {
    std::FILE* out = std::fopen(args.json_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", args.json_out.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::printf("wrote %s\n", args.json_out.c_str());
  } else {
    std::printf("%s\n", json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  argc = par::init_threads_from_cli(argc, argv);
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();
  if (args.sharded) return run_sharded(args);
  if (!args.journal_out.empty() && args.plan_file.empty()) {
    std::fprintf(stderr, "error: --journal-out requires --plan\n");
    return 2;
  }

  if (!args.json)
    std::printf("=== Chaos sweep: fault intensity vs graceful degradation "
                "===\n");
  const DatasetPair data = kaist_like(20.0, 1.5 * 3600.0);

  SimulationConfig config;
  config.model = args.model;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = args.seed;
  config.migration_retry = {.max_attempts = 6,
                            .initial_backoff_intervals = 1,
                            .max_backoff_intervals = 8};
  const SimulationWorld world = build_world(config, data.train, data.test);

  int num_intervals = 0;
  for (const Trajectory& t : data.test)
    num_intervals = std::max(num_intervals, static_cast<int>(t.size()));

  std::vector<ScenarioResult> results;
  if (!args.plan_file.empty()) {
    std::ifstream in(args.plan_file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", args.plan_file.c_str());
      return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    obs::Journal journal;
    results.push_back(run_scenario(args.plan_file, config, world,
                                   FaultPlan::from_json(text),
                                   args.journal_out.empty() ? nullptr
                                                            : &journal));
    if (!args.journal_out.empty()) {
      const bool binary = args.journal_out.size() >= 4 &&
                          args.journal_out.compare(
                              args.journal_out.size() - 4, 4, ".jnl") == 0;
      std::ofstream out(args.journal_out,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     args.journal_out.c_str());
        return 1;
      }
      const std::string bytes = binary
                                    ? journal.encode()
                                    : obs::journal_to_jsonl(journal.events());
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!args.json)
        std::printf("journal: %zu events -> %s\n", journal.size(),
                    args.journal_out.c_str());
    }
  } else {
    for (const double intensity : {0.0, 0.002, 0.01, 0.03}) {
      RandomFaultConfig faults;
      faults.seed = args.seed + 1;  // plan stream independent of the sim seed
      faults.num_servers = world.servers.num_servers();
      faults.num_clients = static_cast<int>(data.test.size());
      faults.num_intervals = num_intervals;
      faults.server_crash_rate = intensity;
      faults.crash_downtime_intervals = 4;
      faults.backhaul_degrade_rate = intensity;
      faults.backhaul_outage_intervals = 3;
      faults.telemetry_dropout_rate = intensity;
      faults.client_disconnect_rate = intensity;
      char label[32];
      std::snprintf(label, sizeof label, "intensity %.3f", intensity);
      results.push_back(run_scenario(
          label, config, world, FaultPlan::random_schedule(faults)));
    }
  }

  if (args.json) {
    std::vector<obs::JsonValue> rows;
    rows.reserve(results.size());
    for (const ScenarioResult& r : results) rows.push_back(to_json(r));
    std::printf("%s\n",
                obs::JsonValue::make_array(std::move(rows)).serialize().c_str());
    return 0;
  }
  print_table(results);
  std::printf(
      "(availability counts client-intervals attached to a live server; the "
      "offloaded share\n falls as clients ride out outages on the local "
      "fallback; deferred migrations drain\n through retry-with-backoff once "
      "links heal — 'abandoned' is what outlived the budget)\n");
  return 0;
}
