// Extension benches beyond the paper's evaluation:
//  A. Prediction quality vs hit ratio — how much of PerDNN's win depends on
//     the mobility predictor (stationary lower bound, Markov, SVR, oracle
//     upper bound).
//  B. GPU-aware server selection — the paper's load-balancing claim: letting
//     clients pick the best *visible* server (by GPU-aware plan latency)
//     instead of blindly using their cell's server, in a dense hotspot.
//  C. Failure injection — edge servers crash, losing caches and clients;
//     how hit ratio and cold-start throughput degrade with failure rate.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "datasets.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

void predictor_quality() {
  std::printf("\n--- A. hit ratio by mobility predictor (Inception, "
              "KAIST-like, r=50) ---\n");
  const DatasetPair data = kaist_like(20.0, 3.0 * 3600.0);

  TextTable table({"predictor", "hit ratio %", "cold-window queries",
                   "migrated GB"});
  for (PredictorKind kind :
       {PredictorKind::kStationary, PredictorKind::kMarkov,
        PredictorKind::kSvr, PredictorKind::kOracle}) {
    SimulationConfig config;
    config.model = ModelName::kInception;
    config.policy = MigrationPolicy::kProactive;
    config.migration_radius_m = 50.0;
    config.predictor = kind;
    config.seed = 97;
    const SimulationWorld world = build_world(config, data.train, data.test);
    const SimulationMetrics metrics = run_simulation(config, world);
    const char* label = kind == PredictorKind::kStationary ? "stationary"
                        : kind == PredictorKind::kMarkov   ? "Markov"
                        : kind == PredictorKind::kSvr      ? "SVR"
                                                           : "oracle";
    table.add_row({label, TextTable::num(metrics.hit_ratio() * 100.0, 1),
                   TextTable::num(static_cast<long long>(
                       metrics.cold_window_queries)),
                   TextTable::num(
                       bytes_to_mb(metrics.total_migrated_bytes) / 1024.0,
                       1)});
  }
  std::printf("%s", table.to_string().c_str());
}

void server_selection() {
  std::printf("\n--- B. server selection in a dense hotspot (ResNet, 40 "
              "users on 600x600 m) ---\n");
  CampusTraceConfig trace_config;
  trace_config.area = {0.0, 0.0, 600.0, 600.0};
  trace_config.num_users = 40;
  trace_config.num_buildings = 6;
  trace_config.duration = 1.5 * 3600.0;
  trace_config.sample_interval = 20.0;
  trace_config.seed = 55;
  const auto train = generate_campus_traces(trace_config);
  trace_config.seed = 66;
  const auto test = generate_campus_traces(trace_config);

  SimulationConfig config;
  config.model = ModelName::kResNet;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, train, test);

  TextTable table({"selection", "server changes", "hit ratio %",
                   "cold-window queries", "queries per window"});
  for (ServerSelection selection :
       {ServerSelection::kCurrentCell, ServerSelection::kBestVisible}) {
    SimulationConfig run = config;
    run.selection = selection;
    run.visibility_radius_m = 120.0;
    const SimulationMetrics metrics = run_simulation(run, world);
    table.add_row(
        {selection == ServerSelection::kCurrentCell
             ? "current cell"
             : "best visible (GPU-aware)",
         TextTable::num(static_cast<long long>(metrics.server_changes)),
         TextTable::num(metrics.hit_ratio() * 100.0, 1),
         TextTable::num(static_cast<long long>(metrics.cold_window_queries)),
         TextTable::num(static_cast<double>(metrics.cold_window_queries) /
                            std::max(1, metrics.server_changes),
                        1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(GPU-aware selection with hysteresis suppresses boundary "
              "flapping — far fewer cold\n starts — and steers clients off "
              "crowded cells, the load balancing of Section 3.C;\n the "
              "trade-off is a lower hit ratio, since migrations target the "
              "predicted cell's\n neighbourhood while selection may pick a "
              "less-loaded server outside it)\n");
}

void failure_injection() {
  std::printf("\n--- C. edge-server failures (Inception, KAIST-like, "
              "r=100) ---\n");
  const DatasetPair data = kaist_like(20.0, 3.0 * 3600.0);
  SimulationConfig config;
  config.model = ModelName::kInception;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);

  TextTable table({"failure rate /srv/interval", "crashes", "evictions",
                   "hit ratio %", "cold-window queries"});
  for (double rate : {0.0, 0.001, 0.005, 0.02}) {
    SimulationConfig run = config;
    run.server_failure_rate = rate;
    run.server_downtime_intervals = 5;
    const SimulationMetrics metrics = run_simulation(run, world);
    table.add_row({TextTable::num(rate, 3),
                   TextTable::num(static_cast<long long>(
                       metrics.server_failures)),
                   TextTable::num(static_cast<long long>(
                       metrics.failure_evictions)),
                   TextTable::num(metrics.hit_ratio() * 100.0, 1),
                   TextTable::num(static_cast<long long>(
                       metrics.cold_window_queries))});
  }
  std::printf("%s", table.to_string().c_str());
}


void routing_fallback() {
  std::printf("\n--- D. routing fallback: bridge cold starts through the "
              "previous server (ResNet, KAIST-like) ---\n");
  const DatasetPair data = kaist_like(20.0, 3.0 * 3600.0);
  SimulationConfig config;
  config.model = ModelName::kResNet;
  config.migration_radius_m = 50.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);

  struct Row {
    const char* label;
    MigrationPolicy policy;
    bool routing;
  };
  TextTable table({"configuration", "cold-window queries", "routed queries",
                   "hit ratio %"});
  for (const Row row : {Row{"IONN", MigrationPolicy::kNone, false},
                        Row{"IONN + routing", MigrationPolicy::kNone, true},
                        Row{"PerDNN", MigrationPolicy::kProactive, false},
                        Row{"PerDNN + routing", MigrationPolicy::kProactive,
                            true}}) {
    SimulationConfig run = config;
    run.policy = row.policy;
    run.routing_fallback = row.routing;
    const SimulationMetrics metrics = run_simulation(run, world);
    table.add_row({row.label,
                   TextTable::num(static_cast<long long>(
                       metrics.cold_window_queries)),
                   TextTable::num(static_cast<long long>(
                       metrics.routed_queries)),
                   TextTable::num(metrics.hit_ratio() * 100.0, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(the paper's 'alternative (2)': routing patches misses at "
              "the cost of steady backhaul\n usage; proactive migration "
              "still wins, and the two compose)\n");
}


void ttl_sweep() {
  std::printf("\n--- E. cache TTL sweep (Inception, KAIST-like, r=100; "
              "paper fixes TTL=5) ---\n");
  const DatasetPair data = kaist_like(20.0, 3.0 * 3600.0);
  SimulationConfig config;
  config.model = ModelName::kInception;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);

  TextTable table({"TTL (intervals)", "hit ratio %", "cold-window queries",
                   "migrated GB"});
  for (int ttl : {1, 2, 5, 10, 20}) {
    SimulationConfig run = config;
    run.ttl_intervals = ttl;
    const SimulationMetrics metrics = run_simulation(run, world);
    table.add_row({TextTable::num(static_cast<long long>(ttl)),
                   TextTable::num(metrics.hit_ratio() * 100.0, 1),
                   TextTable::num(static_cast<long long>(
                       metrics.cold_window_queries)),
                   TextTable::num(
                       bytes_to_mb(metrics.total_migrated_bytes) / 1024.0,
                       1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(short TTLs evict layers before the user arrives and force "
              "re-sends; long TTLs cost\n only server storage in this "
              "model — the paper's TTL=5 sits on the plateau)\n");
}

void bandwidth_jitter() {
  std::printf("\n--- F. wireless variability (Inception, KAIST-like, "
              "lognormal link factor per attachment) ---\n");
  const DatasetPair data = kaist_like(20.0, 3.0 * 3600.0);
  SimulationConfig config;
  config.model = ModelName::kInception;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);

  TextTable table({"sigma", "cold-window queries", "vs stable %"});
  long long baseline = 0;
  for (double sigma : {0.0, 0.25, 0.5, 0.75}) {
    SimulationConfig run = config;
    run.bandwidth_jitter_sigma = sigma;
    const SimulationMetrics metrics = run_simulation(run, world);
    if (sigma == 0.0) baseline = metrics.cold_window_queries;
    table.add_row(
        {TextTable::num(sigma, 2),
         TextTable::num(static_cast<long long>(metrics.cold_window_queries)),
         TextTable::num(100.0 * metrics.cold_window_queries /
                            static_cast<double>(baseline),
                        1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(plans are made against nominal rates while execution sees "
              "the drawn ones; hit-heavy\n workloads are insensitive — "
              "only the miss-path uploads stretch)\n");
}

}  // namespace

int main() {
  std::printf("=== Extensions: prediction quality, GPU-aware server "
              "selection, failure injection ===\n");
  predictor_quality();
  server_selection();
  failure_injection();
  routing_fallback();
  ttl_sweep();
  bandwidth_jitter();
  return 0;
}
