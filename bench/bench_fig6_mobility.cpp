// Fig 6 — choosing the trajectory length n and time interval t.
//
// Left: SVR prediction error (MAE, metres) vs trajectory length n for time
// intervals 15/20/25/30 s — the paper sees a sharp drop at n=2 and little
// improvement past n=5.
// Right: the t trade-off — larger intervals reduce futile predictions but
// increase prediction error; the benefit/cost ratio (Eq. 1-2) picks t.
#include <cstdio>

#include "common/table.hpp"
#include "datasets.hpp"
#include "geo/server_map.hpp"
#include "mobility/evaluate.hpp"

int main() {
  using namespace perdnn;
  using namespace perdnn::bench;
  std::printf("=== Fig 6: mobility-prediction hyperparameters (Geolife-like "
              "traces, linear SVR) ===\n");

  // Dense 5 s base traces; stride k gives interval 5k seconds. A subsample
  // of users keeps the 39 SVR fits of this sweep fast without changing the
  // curves' shape.
  DatasetPair base = geolife_like_base(/*duration=*/5400.0);
  base.train.resize(40);
  base.test.resize(60);
  const ml::SvrConfig fast_svr{.epsilon = 0.01,
                               .lambda = 1e-4,
                               .epochs = 15,
                               .learning_rate = 0.05};

  std::printf("\n--- left: prediction MAE (m) vs trajectory length n ---\n");
  TextTable left({"n", "t=15s", "t=20s", "t=25s", "t=30s"});
  for (int n = 1; n <= 8; ++n) {
    std::vector<std::string> row = {TextTable::num(static_cast<long long>(n))};
    for (int t : {15, 20, 25, 30}) {
      const int stride = t / 5;
      const auto train = resample_all(base.train, stride);
      const auto test = resample_all(base.test, stride);
      ServerMap servers(50.0);
      servers.allocate_for_visits(all_points(test));
      SvrPredictor predictor(n, fast_svr);
      Rng rng(17);
      predictor.fit(train, rng);
      const auto eval = evaluate_predictor(predictor, test, servers);
      row.push_back(TextTable::num(eval.mae_all_m, 1));
    }
    left.add_row(std::move(row));
  }
  std::printf("%s", left.to_string().c_str());

  std::printf("\n--- right: futile predictions and error vs time interval t "
              "(n=5, hex cells r=50 m) ---\n");
  TextTable right({"t (s)", "futile ratio", "MAE (m)", "in-range acc",
                   "benefit/cost"});
  double best_ratio = -1.0;
  int best_t = 0;
  for (int t : {15, 20, 25, 30, 40, 50, 60}) {
    const int stride = t / 5;
    const auto train = resample_all(base.train, stride);
    const auto test = resample_all(base.test, stride);
    ServerMap servers(50.0);
    servers.allocate_for_visits(all_points(test));
    SvrPredictor predictor(5, fast_svr);
    Rng rng(19);
    predictor.fit(train, rng);
    const auto eval = evaluate_predictor(predictor, test, servers);
    const double ratio = benefit_cost_ratio(eval);
    right.add_row({TextTable::num(static_cast<long long>(t)),
                   TextTable::num(eval.futile_ratio(), 3),
                   TextTable::num(eval.mae_all_m, 1),
                   TextTable::num(eval.in_range_accuracy, 3),
                   TextTable::num(ratio, 4)});
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_t = t;
    }
  }
  std::printf("%s", right.to_string().c_str());
  std::printf("best t by benefit/cost: %d s (paper: 20 s)\n", best_t);
  return 0;
}
