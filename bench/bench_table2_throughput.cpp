// Table II — DNN queries executed while a model uploads. `miss` is the IONN
// baseline (nothing at the server, incremental upload from scratch); `hit`
// is PerDNN after proactive migration landed everything. The window is the
// full upload duration of the server-side layers at 35 Mbps.
#include <cstdio>

#include "common/table.hpp"
#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;
  std::printf("=== Table II: queries executed during model upload "
              "(paper: MobileNet 4->5, Inception 33->44, ResNet 14->34) ===\n");

  TextTable table({"model", "upload time s", "queries (miss, IONN)",
                   "queries (hit, PerDNN)", "gain"});
  for (ModelName name :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet}) {
    OffloadingSession::Options options;
    options.model = name;
    options.profiling.max_clients = 4;
    options.profiling.samples_per_level = 3;
    OffloadingSession session(options);
    const UploadSchedule schedule = session.upload_schedule(
        session.best_plan(), UploadEnumeration::kAnchored);

    const double upload_s = static_cast<double>(schedule.total_bytes()) /
                            options.net.uplink_bytes_per_sec;
    ReplayConfig config;
    config.max_time = upload_s + 5.0;
    const int miss = session.replay(schedule, 0, config)
                         .queries_completed_by(upload_s);
    const int hit = session.replay(schedule, schedule.total_bytes(), config)
                        .queries_completed_by(upload_s);
    table.add_row({model_name_str(name), TextTable::num(upload_s, 1),
                   TextTable::num(static_cast<long long>(miss)),
                   TextTable::num(static_cast<long long>(hit)),
                   TextTable::num(static_cast<double>(hit) / miss, 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
