// Fig 9 — large-scale simulation: queries executed in cold-start windows
// and hit ratios, for the IONN baseline, PerDNN with migration radius
// r=50 m and r=100 m, and the all-layers-everywhere Optimal, across both
// datasets and all three models.
//
// With an output prefix argument (bench_fig9_large_scale /tmp/fig9), every
// policy run additionally dumps its per-interval per-server timeseries to
// <prefix>_<dataset>_<model>_<policy>.csv, so each bar of the figure can be
// decomposed interval by interval.
//
// `--no-fastpath` disables the single-query fast path (flattened-forest
// estimator, memoised estimates, incremental upload scoring) so the
// end-to-end wall-clock printed at exit can be compared fast path on vs
// off; the figures themselves are byte-identical either way.
//
// `--journal-out PREFIX` journals every policy run to
// <prefix>_<dataset>_<model>_<policy>.journal.jsonl (tools/perdnn_obs reads
// them). Comparing total wall-clock with and without the flag measures the
// journaling overhead on the paper's largest workload.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "datasets.hpp"
#include "obs/journal.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == ' ' || c == '(' || c == ')' || c == '=') c = '-';
  return s;
}

void run_dataset(const DatasetPair& data, const char* out_prefix,
                 const char* journal_prefix) {
  std::printf("\n===== %s (%zu users) =====\n", data.name, data.test.size());
  for (ModelName model :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet}) {
    SimulationConfig config;
    config.model = model;
    config.seed = 97;
    const SimulationWorld world = build_world(config, data.train, data.test);

    struct Row {
      const char* label;
      MigrationPolicy policy;
      double radius;
    };
    const Row rows[] = {
        {"IONN (baseline)", MigrationPolicy::kNone, 0.0},
        {"PerDNN r=50", MigrationPolicy::kProactive, 50.0},
        {"PerDNN r=100", MigrationPolicy::kProactive, 100.0},
        {"Optimal", MigrationPolicy::kOptimal, 0.0},
    };

    std::printf("\n--- %s on %s: %d servers ---\n", model_name_str(model),
                data.name, world.servers.num_servers());
    TextTable table({"policy", "cold-window queries", "hit ratio %",
                     "hits/partials/misses", "server changes"});
    // The four policy runs share the (read-only) world and are independent:
    // fan them out, collect metrics plus the rendered timeseries CSV, then
    // write files and rows serially in policy order so the output is stable
    // at any thread count.
    struct RowResult {
      SimulationMetrics metrics;
      std::string csv;
      std::string journal;
    };
    const auto results =
        par::parallel_map(std::size(rows), [&](std::size_t r) {
          SimulationConfig run = config;
          run.policy = rows[r].policy;
          if (rows[r].radius > 0.0) run.migration_radius_m = rows[r].radius;
          RowResult result;
          obs::SimTimeseries timeseries;
          timeseries.set_model(model_name_str(model));
          obs::SimTimeseries* recorder =
              out_prefix != nullptr ? &timeseries : nullptr;
          obs::Journal journal;
          SimulationRunOptions options;
          if (journal_prefix != nullptr) options.journal = &journal;
          result.metrics = run_simulation(run, world, recorder, options);
          if (recorder != nullptr) {
            std::ostringstream csv;
            recorder->write_csv(csv);
            result.csv = csv.str();
          }
          if (journal_prefix != nullptr)
            result.journal = obs::journal_to_jsonl(journal.events());
          return result;
        });
    for (std::size_t r = 0; r < results.size(); ++r) {
      const Row& row = rows[r];
      const SimulationMetrics& metrics = results[r].metrics;
      if (out_prefix != nullptr) {
        const std::string path = std::string(out_prefix) + "_" + data.name +
                                 "_" + model_name_str(model) + "_" +
                                 sanitize(row.label) + ".csv";
        std::ofstream out(path);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          std::exit(1);
        }
        out << results[r].csv;
        std::printf("timeseries -> %s\n", path.c_str());
      }
      if (journal_prefix != nullptr) {
        const std::string path = std::string(journal_prefix) + "_" +
                                 data.name + "_" + model_name_str(model) +
                                 "_" + sanitize(row.label) + ".journal.jsonl";
        std::ofstream out(path);
        if (!out) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          std::exit(1);
        }
        out << results[r].journal;
        std::printf("journal -> %s\n", path.c_str());
      }
      char hm[64];
      std::snprintf(hm, sizeof hm, "%d/%d/%d", metrics.hits, metrics.partials,
                    metrics.misses);
      table.add_row({row.label,
                     TextTable::num(static_cast<long long>(
                         metrics.cold_window_queries)),
                     TextTable::num(metrics.hit_ratio() * 100.0, 1), hm,
                     TextTable::num(static_cast<long long>(
                         metrics.server_changes))});
    }
    std::printf("%s", table.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  argc = par::init_threads_from_cli(argc, argv);
  const char* out_prefix = nullptr;
  const char* journal_prefix = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-fastpath") == 0)
      perdnn::fastpath::set_enabled(false);
    else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc)
      journal_prefix = argv[++i];
    else
      out_prefix = argv[i];
  }
  std::printf("=== Fig 9: executed queries and hit ratios during the "
              "large-scale simulation ===\n");
  std::printf("paper shape: IONN < PerDNN(r=50) < PerDNN(r=100) < Optimal;\n"
              "hit ratio grows with r; KAIST (slow users) hits more than "
              "Geolife (fast users);\nMobileNet gains little (tiny model), "
              "Inception/ResNet gain a lot\n");
  const auto start = std::chrono::steady_clock::now();
  run_dataset(kaist_like(), out_prefix, journal_prefix);
  run_dataset(geolife_like(), out_prefix, journal_prefix);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("\ntotal wall-clock %.3fs (fast path %s, %d threads)\n",
              elapsed.count(), perdnn::fastpath::enabled() ? "on" : "off",
              par::num_threads());
  return 0;
}
