// Fig 9 — large-scale simulation: queries executed in cold-start windows
// and hit ratios, for the IONN baseline, PerDNN with migration radius
// r=50 m and r=100 m, and the all-layers-everywhere Optimal, across both
// datasets and all three models.
#include <cstdio>

#include "common/table.hpp"
#include "datasets.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

void run_dataset(const DatasetPair& data) {
  std::printf("\n===== %s (%zu users) =====\n", data.name, data.test.size());
  for (ModelName model :
       {ModelName::kMobileNet, ModelName::kInception, ModelName::kResNet}) {
    SimulationConfig config;
    config.model = model;
    config.seed = 97;
    const SimulationWorld world = build_world(config, data.train, data.test);

    struct Row {
      const char* label;
      MigrationPolicy policy;
      double radius;
    };
    const Row rows[] = {
        {"IONN (baseline)", MigrationPolicy::kNone, 0.0},
        {"PerDNN r=50", MigrationPolicy::kProactive, 50.0},
        {"PerDNN r=100", MigrationPolicy::kProactive, 100.0},
        {"Optimal", MigrationPolicy::kOptimal, 0.0},
    };

    std::printf("\n--- %s on %s: %d servers ---\n", model_name_str(model),
                data.name, world.servers.num_servers());
    TextTable table({"policy", "cold-window queries", "hit ratio %",
                     "hits/partials/misses", "server changes"});
    for (const Row& row : rows) {
      SimulationConfig run = config;
      run.policy = row.policy;
      if (row.radius > 0.0) run.migration_radius_m = row.radius;
      const SimulationMetrics metrics = run_simulation(run, world);
      char hm[64];
      std::snprintf(hm, sizeof hm, "%d/%d/%d", metrics.hits, metrics.partials,
                    metrics.misses);
      table.add_row({row.label,
                     TextTable::num(static_cast<long long>(
                         metrics.cold_window_queries)),
                     TextTable::num(metrics.hit_ratio() * 100.0, 1), hm,
                     TextTable::num(static_cast<long long>(
                         metrics.server_changes))});
    }
    std::printf("%s", table.to_string().c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== Fig 9: executed queries and hit ratios during the "
              "large-scale simulation ===\n");
  std::printf("paper shape: IONN < PerDNN(r=50) < PerDNN(r=100) < Optimal;\n"
              "hit ratio grows with r; KAIST (slow users) hits more than "
              "Geolife (fast users);\nMobileNet gains little (tiny model), "
              "Inception/ResNet gain a lot\n");
  run_dataset(kaist_like());
  run_dataset(geolife_like());
  return 0;
}
