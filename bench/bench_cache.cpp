// Cache-pressure sweep: what a per-server memory budget costs and saves.
//
// Builds sharded city worlds at increasing client density, then replays the
// proactive policy under a falling per-server cache byte budget — from
// unbudgeted down to less than one full canonical prefix per tile — and
// reports the trade the budget makes: proactive backhaul bytes (admission
// throttles pushes, so traffic falls with the budget), cold-start query
// latency and hit ratio (which pay for the saved memory), and the
// query-loss share (queries pushed to the on-device fallback).
//
//   bench_cache [--clients N] [--tiles-x N] [--tiles-y N] [--intervals N]
//               [--shards N] [--seed N] [--json-out FILE] [--threads N]
//
// Unknown flags are hard errors (exit 2). The default sweep emits the
// BENCH_cache artifact that tools/check_bench_regression.sh gates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "obs/resource.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"

namespace {

using namespace perdnn;

struct Args {
  int clients = 20'000;
  int tiles_x = 20;
  int tiles_y = 20;
  int intervals = 16;
  int shards = 8;
  std::uint64_t seed = 61;
  std::string json_out;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_cache [--clients N] [--tiles-x N] [--tiles-y N] "
               "[--intervals N] [--shards N] [--seed N] [--json-out FILE] "
               "[--threads N]\n");
  return 2;
}

bool int_flag(int argc, char** argv, int& i, int* out) {
  if (i + 1 >= argc) return false;
  char* end = nullptr;
  const long v = std::strtol(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0' || v <= 0) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "--clients") {
      if (!int_flag(argc, argv, i, &args->clients)) return false;
    } else if (name == "--tiles-x") {
      if (!int_flag(argc, argv, i, &args->tiles_x)) return false;
    } else if (name == "--tiles-y") {
      if (!int_flag(argc, argv, i, &args->tiles_y)) return false;
    } else if (name == "--intervals") {
      if (!int_flag(argc, argv, i, &args->intervals)) return false;
    } else if (name == "--shards") {
      if (!int_flag(argc, argv, i, &args->shards)) return false;
    } else if (name == "--seed") {
      char* end = nullptr;
      const unsigned long long seed =
          i + 1 < argc ? std::strtoull(argv[++i], &end, 10) : 0;
      if (end == nullptr || end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: --seed needs an integer\n");
        return false;
      }
      args->seed = seed;
    } else if (name == "--json-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json-out needs a file\n");
        return false;
      }
      args->json_out = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

struct ScenarioResult {
  std::string label;
  double density = 1.0;
  Bytes budget_bytes = 0;  // 0 = unbudgeted
  SimulationMetrics metrics;
  double mean_cold_latency_ms = 0.0;
  double query_loss = 0.0;  // share of queries pushed to the local fallback
  double run_wall_s = 0.0;
};

/// Sums `cold_window_queries` and `cold_latency_sum_s` out of a streamed
/// timeseries CSV (the shard engine's only cold-latency export).
void sum_cold_columns(const std::string& path, long long* queries,
                      double* latency_s) {
  *queries = 0;
  *latency_s = 0.0;
  std::ifstream in(path);
  std::string line;
  int q_col = -1, l_col = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string field;
    if (q_col < 0) {  // header line
      for (int i = 0; std::getline(fields, field, ','); ++i) {
        if (field == "cold_window_queries") q_col = i;
        if (field == "cold_latency_sum_s") l_col = i;
      }
      continue;
    }
    for (int i = 0; std::getline(fields, field, ','); ++i) {
      if (i == q_col) *queries += std::strtoll(field.c_str(), nullptr, 10);
      if (i == l_col) *latency_s += std::strtod(field.c_str(), nullptr);
    }
  }
}

ScenarioResult run_scenario(const std::string& label, const ShardWorld& base,
                            double density, Bytes budget, int shards) {
  // The planning tables are budget-independent, so one world per density is
  // reused across the budget column (equivalent to rebuilding each time).
  ShardWorld world = base;
  world.config.cache_budget_bytes = budget;

  const std::string ts_path = "bench_cache_ts.tmp.csv";
  ShardRunOptions options;
  options.num_shards = shards;
  options.timeseries_path = ts_path;

  const auto start = std::chrono::steady_clock::now();
  ScenarioResult result;
  result.label = label;
  result.density = density;
  result.budget_bytes = budget;
  result.metrics = run_sharded_simulation(world, options);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  result.run_wall_s = wall.count();

  long long cold_queries = 0;
  double cold_latency_s = 0.0;
  sum_cold_columns(ts_path, &cold_queries, &cold_latency_s);
  std::remove(ts_path.c_str());
  if (cold_queries > 0)
    result.mean_cold_latency_ms =
        cold_latency_s / static_cast<double>(cold_queries) * 1e3;
  result.query_loss = 1.0 - result.metrics.offload_ratio();

  std::printf("[%s] %.2fs, backhaul %.1f MB, cold p_mean %.1f ms, "
              "loss %.4f, evictions %lld, partial stores %lld\n",
              label.c_str(), result.run_wall_s,
              bytes_to_mb(result.metrics.total_migrated_bytes),
              result.mean_cold_latency_ms, result.query_loss,
              result.metrics.cache_evictions,
              result.metrics.cache_partial_stores);
  return result;
}

std::string scenario_json(const ScenarioResult& r) {
  char buf[1024];
  const SimulationMetrics& m = r.metrics;
  std::snprintf(
      buf, sizeof buf,
      "{\"scenario\":\"%s\",\"density\":%.6g,\"budget_bytes\":%lld,"
      "\"clients\":%d,\"backhaul_bytes\":%lld,\"peak_uplink_mbps\":%.6g,"
      "\"mean_cold_latency_ms\":%.6g,\"query_loss\":%.6g,"
      "\"offload_ratio\":%.6g,\"availability\":%.6g,\"hit_ratio\":%.6g,"
      "\"cold_window_queries\":%lld,\"local_fallback_queries\":%lld,"
      "\"cache_evictions\":%lld,\"cache_partial_stores\":%lld,"
      "\"peak_cache_bytes\":%lld,\"run_wall_s\":%.6g}",
      r.label.c_str(), r.density, static_cast<long long>(r.budget_bytes),
      m.num_clients, static_cast<long long>(m.total_migrated_bytes),
      m.peak_uplink_mbps, r.mean_cold_latency_ms, r.query_loss,
      m.offload_ratio(), m.availability(), m.hit_ratio(),
      m.cold_window_queries, static_cast<long long>(m.local_fallback_queries),
      m.cache_evictions, m.cache_partial_stores,
      static_cast<long long>(m.peak_cache_bytes), r.run_wall_s);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  argc = par::init_threads_from_cli(argc, argv);
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();

  std::printf("=== Cache-pressure sweep: per-server byte budget vs backhaul "
              "and cold starts ===\n");

  // Budget column, in full canonical prefixes per tile: unbudgeted, roomy,
  // tight, starved. Density rows scale the client count.
  const std::pair<const char*, double> budgets[] = {
      {"unbudgeted", 0.0}, {"4-prefix", 4.0}, {"2-prefix", 2.0},
      {"1-prefix", 1.0},   {"half-prefix", 0.5},
  };
  const double densities[] = {1.0, 3.0};

  std::vector<ScenarioResult> results;
  for (const double density : densities) {
    ShardWorldConfig config;
    config.model = ModelName::kMobileNet;
    config.tiles_x = args.tiles_x;
    config.tiles_y = args.tiles_y;
    config.num_clients =
        static_cast<int>(static_cast<double>(args.clients) * density);
    config.num_intervals = args.intervals;
    config.offline_probability = 0.02;
    config.seed = args.seed;
    std::printf("building world (density %.0fx: %d clients, %d servers)...\n",
                density, config.num_clients, config.num_servers());
    const ShardWorld world = build_shard_world(config);
    const Bytes full_prefix = world.prefix_bytes.back();

    for (const auto& [name, prefixes] : budgets) {
      const auto budget =
          static_cast<Bytes>(prefixes * static_cast<double>(full_prefix));
      char label[64];
      std::snprintf(label, sizeof label, "%.0fx/%s", density, name);
      results.push_back(
          run_scenario(label, world, density, budget, args.shards));
    }
  }

  TextTable table({"scenario", "budget MB", "backhaul MB", "cold ms",
                   "loss %", "hit %", "evictions", "partial", "peak MB"});
  for (const ScenarioResult& r : results) {
    table.add_row(
        {r.label,
         r.budget_bytes > 0 ? TextTable::num(bytes_to_mb(r.budget_bytes), 1)
                            : std::string("inf"),
         TextTable::num(bytes_to_mb(r.metrics.total_migrated_bytes), 1),
         TextTable::num(r.mean_cold_latency_ms, 1),
         TextTable::num(r.query_loss * 100.0, 2),
         TextTable::num(r.metrics.hit_ratio() * 100.0, 1),
         TextTable::num(r.metrics.cache_evictions),
         TextTable::num(r.metrics.cache_partial_stores),
         TextTable::num(bytes_to_mb(r.metrics.peak_cache_bytes), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "(a tighter budget caps resident layers, which throttles proactive "
      "pushes: backhaul\n bytes collapse as the budget falls, but attaches "
      "stop finding full prefixes cached,\n so the hit ratio and cold-start "
      "latency pay for the saved memory and bandwidth)\n");

  const std::uint64_t peak_rss = obs::peak_rss_bytes();
  std::string json = "{\"bench\":\"cache_budget\",";
  {
    char head[256];
    std::snprintf(head, sizeof head,
                  "\"clients\":%d,\"servers\":%d,\"intervals\":%d,"
                  "\"shards\":%d,\"threads\":%d,\"scenarios\":[",
                  args.clients, args.tiles_x * args.tiles_y, args.intervals,
                  args.shards, par::num_threads());
    json += head;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json += ',';
    json += scenario_json(results[i]);
  }
  {
    char tail[64];
    std::snprintf(tail, sizeof tail, "],\"peak_rss_bytes\":%llu}",
                  static_cast<unsigned long long>(peak_rss));
    json += tail;
  }
  if (!args.json_out.empty()) {
    std::FILE* out = std::fopen(args.json_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", args.json_out.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::printf("wrote %s\n", args.json_out.c_str());
  } else {
    std::printf("%s\n", json.c_str());
  }
  return 0;
}
