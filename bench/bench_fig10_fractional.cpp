// Fig 10 — fractional migration. The top ~6% most crowded servers (by peak
// uplink in a baseline run) send and receive only a highest-efficiency byte
// budget of each client's model. The paper cuts Inception's peak uplink 67%
// (616 -> 206 Mbps) for 2% fewer queries, and ResNet's 43% for 1%.
#include <cstdio>

#include "common/table.hpp"
#include "datasets.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

void run_model(const DatasetPair& data, ModelName model,
               const std::vector<double>& budgets_mb) {
  SimulationConfig config;
  config.model = model;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);
  const SimulationMetrics baseline = run_simulation(config, world);

  // Crowded set: top ~6% of servers by peak uplink in the baseline run.
  std::vector<std::pair<double, ServerId>> ranked;
  for (ServerId s = 0; s < baseline.num_servers; ++s)
    ranked.push_back(
        {baseline.server_peak_uplink_mbps[static_cast<std::size_t>(s)], s});
  std::sort(ranked.rbegin(), ranked.rend());
  const auto crowded_count =
      std::max<std::size_t>(1, ranked.size() * 6 / 100);
  std::vector<ServerId> crowded;
  for (std::size_t i = 0; i < crowded_count; ++i)
    crowded.push_back(ranked[i].second);

  std::printf("\n--- %s on %s: %zu crowded servers of %d ---\n",
              model_name_str(model), data.name, crowded.size(),
              baseline.num_servers);
  TextTable table({"migrated budget", "peak uplink Mbps", "uplink cut %",
                   "cold-window queries", "query loss %"});
  table.add_row({"full model", TextTable::num(baseline.peak_uplink_mbps, 0),
                 "-",
                 TextTable::num(static_cast<long long>(
                     baseline.cold_window_queries)),
                 "-"});
  for (double mb : budgets_mb) {
    SimulationConfig capped = config;
    capped.crowded_servers = crowded;
    capped.crowded_byte_budget = mb_to_bytes(mb);
    const SimulationMetrics metrics = run_simulation(capped, world);
    const double cut = 100.0 * (1.0 - metrics.peak_uplink_mbps /
                                          baseline.peak_uplink_mbps);
    const double loss =
        100.0 * (1.0 - static_cast<double>(metrics.cold_window_queries) /
                           static_cast<double>(baseline.cold_window_queries));
    table.add_row({TextTable::num(mb, 0) + " MB",
                   TextTable::num(metrics.peak_uplink_mbps, 0),
                   TextTable::num(cut, 0),
                   TextTable::num(static_cast<long long>(
                       metrics.cold_window_queries)),
                   TextTable::num(loss, 1)});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig 10: fractional migration — peak backhaul traffic vs "
              "execution performance (KAIST-like) ===\n");
  const DatasetPair data = kaist_like();
  run_model(data, ModelName::kInception, {64.0, 43.0, 24.0, 12.0});
  run_model(data, ModelName::kResNet, {56.0, 32.0, 16.0});
  return 0;
}
