// City-scale throughput bench for the sharded engine (the BENCH_scale.json
// artifact): one machine, a 1M-client x 10k-server x 50-interval run with
// the timeseries streamed to disk — nothing O(clients x intervals) resident.
//
//   bench_scale [--clients N] [--tiles-x N] [--tiles-y N] [--intervals N]
//               [--shards N] [--threads N] [--model name]
//               [--timeseries path] [--json path]
//
// Reported: clients/sec (clients x intervals / total wall), peak RSS
// (VmHWM), and the per-interval wall-time distribution (mean/p99/max).
// tools/check_bench_regression.sh gates the JSON against the committed
// baseline: a clients/sec floor and a peak-RSS ceiling.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "obs/resource.hpp"
#include "sim/shard_sim.hpp"
#include "sim/shard_world.hpp"

namespace {

using namespace perdnn;

struct Args {
  int clients = 1'000'000;
  int tiles_x = 100;
  int tiles_y = 100;
  int intervals = 50;
  int shards = 16;
  std::string model = "inception";
  std::string timeseries = "BENCH_scale_timeseries.csv";
  std::string json;
};

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr,
               "bench_scale: %s\n"
               "usage: bench_scale [--clients N] [--tiles-x N] [--tiles-y N]\n"
               "                   [--intervals N] [--shards N] [--threads N]\n"
               "                   [--model mobilenet|inception|resnet]\n"
               "                   [--timeseries path] [--json path]\n",
               what);
  std::exit(2);
}

int int_flag(int argc, char** argv, int& i, const char* name) {
  if (i + 1 >= argc) usage_error(name);
  const long v = std::strtol(argv[++i], nullptr, 10);
  if (v <= 0) usage_error(name);
  return static_cast<int>(v);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--clients") == 0) {
      args.clients = int_flag(argc, argv, i, a);
    } else if (std::strcmp(a, "--tiles-x") == 0) {
      args.tiles_x = int_flag(argc, argv, i, a);
    } else if (std::strcmp(a, "--tiles-y") == 0) {
      args.tiles_y = int_flag(argc, argv, i, a);
    } else if (std::strcmp(a, "--intervals") == 0) {
      args.intervals = int_flag(argc, argv, i, a);
    } else if (std::strcmp(a, "--shards") == 0) {
      args.shards = int_flag(argc, argv, i, a);
    } else if (std::strcmp(a, "--model") == 0 && i + 1 < argc) {
      args.model = argv[++i];
    } else if (std::strcmp(a, "--timeseries") == 0 && i + 1 < argc) {
      args.timeseries = argv[++i];
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      args.json = argv[++i];
    } else {
      usage_error(a);
    }
  }
  return args;
}

ModelName model_from_name(const std::string& name) {
  if (name == "mobilenet") return ModelName::kMobileNet;
  if (name == "inception") return ModelName::kInception;
  if (name == "resnet") return ModelName::kResNet;
  usage_error("unknown --model");
}

}  // namespace

int main(int argc, char** argv) {
  // Strips --threads/--threads=N and returns the compacted argc; iterating
  // with the old argc would walk off the end of the compacted argv.
  argc = par::init_threads_from_cli(argc, argv);
  const Args args = parse_args(argc, argv);

  ShardWorldConfig config;
  config.model = model_from_name(args.model);
  config.tiles_x = args.tiles_x;
  config.tiles_y = args.tiles_y;
  config.num_clients = args.clients;
  config.num_intervals = args.intervals;
  config.offline_probability = 0.02;
  config.seed = 42;

  std::printf("building world: %d clients, %d servers (%dx%d tiles), "
              "%d intervals, %d shards, %d threads\n",
              config.num_clients, config.num_servers(), config.tiles_x,
              config.tiles_y, config.num_intervals, args.shards,
              par::num_threads());
  const auto build_start = std::chrono::steady_clock::now();
  const ShardWorld world = build_shard_world(config);
  const std::chrono::duration<double> build_wall =
      std::chrono::steady_clock::now() - build_start;
  std::printf("world built in %.2fs (canonical order: %zu layers)\n",
              build_wall.count(), world.canonical_order.size());

  std::vector<double> interval_wall_s;
  ShardRunOptions options;
  options.num_shards = args.shards;
  options.timeseries_path = args.timeseries;
  options.interval_wall_s = &interval_wall_s;

  const auto run_start = std::chrono::steady_clock::now();
  const SimulationMetrics metrics = run_sharded_simulation(world, options);
  const std::chrono::duration<double> run_wall =
      std::chrono::steady_clock::now() - run_start;

  const double client_intervals =
      static_cast<double>(config.num_clients) * config.num_intervals;
  const double clients_per_sec =
      run_wall.count() > 0 ? client_intervals / run_wall.count() : 0.0;
  const double p99_s = percentile(interval_wall_s, 99.0);
  const double max_s = max_value(interval_wall_s);
  const double mean_s =
      interval_wall_s.empty()
          ? 0.0
          : run_wall.count() / static_cast<double>(interval_wall_s.size());
  const std::uint64_t peak_rss = obs::peak_rss_bytes();

  std::printf("run: %.2fs total, %.3g client-intervals/sec\n",
              run_wall.count(), clients_per_sec);
  std::printf("interval wall: mean %.3fs  p99 %.3fs  max %.3fs\n", mean_s,
              p99_s, max_s);
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  std::printf("metrics: %d server changes, %lld cold queries, hit ratio "
              "%.3f, %lld migrated bytes\n",
              metrics.server_changes, metrics.cold_window_queries,
              metrics.hit_ratio(),
              static_cast<long long>(metrics.total_migrated_bytes));

  if (!args.json.empty()) {
    std::FILE* out = std::fopen(args.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", args.json.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\"clients\":%d,\"servers\":%d,\"intervals\":%d,\"shards\":%d,"
        "\"threads\":%d,\"model\":\"%s\","
        "\"build_wall_s\":%.6g,\"run_wall_s\":%.6g,"
        "\"clients_per_sec\":%.6g,\"peak_rss_bytes\":%llu,"
        "\"interval_mean_s\":%.6g,\"interval_p99_s\":%.6g,"
        "\"interval_max_s\":%.6g,"
        "\"server_changes\":%d,\"cold_window_queries\":%lld,"
        "\"total_migrated_bytes\":%lld}\n",
        config.num_clients, config.num_servers(), config.num_intervals,
        args.shards, par::num_threads(), args.model.c_str(),
        build_wall.count(), run_wall.count(), clients_per_sec,
        static_cast<unsigned long long>(peak_rss), mean_s, p99_s, max_s,
        metrics.server_changes, metrics.cold_window_queries,
        static_cast<long long>(metrics.total_migrated_bytes));
    std::fclose(out);
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
