// Google-benchmark microbenchmarks for the hot algorithmic paths: the
// partitioning DP (runs per query in the simulator), upload-order planning
// (runs per server change), min-cut, and the mobility predictors.
//
// `bench_micro --json <path>` switches to the comparison harness instead:
// it times the simulator, random-forest training, and the profiler sweep
// once serially (--threads 1) and once with the configured pool
// ("benches", the BENCH_parallel.json shape), then times the single-query
// fast path against its reference implementations ("fastpath", the
// BENCH_fastpath.json artifact): flattened-forest estimator batches vs
// pointer-walking ensembles, and incremental upload-order scoring vs the
// full-replan reference. `--threads N` / PERDNN_THREADS pick the pool size
// for the parallel leg; the fast-path legs always run serially so the
// numbers isolate the algorithmic change. The harness finishes with an
// allocation audit ("allocations"): a global operator-new counter times two
// simulator runs at different horizons, and the difference per extra
// interval is the steady-state heap-allocation rate — the number the
// scratch-buffer reuse in the migration-order loop is meant to keep flat.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>

#include "common/fastpath.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/perdnn.hpp"
#include "datasets.hpp"
#include "ml/flat_forest.hpp"
#include "mobility/predictor.hpp"
#include "mobility/trace_gen.hpp"
#include "sim/simulator.hpp"

// ------------------------------------------------ allocation counter
// Replaces the global allocator for this binary only: every operator new
// bumps a relaxed atomic, so the --json harness can difference counts
// around simulator runs. free() handles both malloc and aligned_alloc
// pointers on this platform, so one delete family suffices.

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p =
          counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}

namespace {

using namespace perdnn;

struct PartitionFixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;
  PartitionPlan plan;

  explicit PartitionFixture(ModelName name) : model(build_model(name)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
    plan = compute_best_plan(context);
  }
};

PartitionFixture& fixture(ModelName name) {
  static PartitionFixture mobilenet(ModelName::kMobileNet);
  static PartitionFixture inception(ModelName::kInception);
  static PartitionFixture resnet(ModelName::kResNet);
  switch (name) {
    case ModelName::kMobileNet: return mobilenet;
    case ModelName::kInception: return inception;
    default: return resnet;
  }
}

void BM_ShortestPathPlan(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_best_plan(f.context));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_ShortestPathPlan)->Arg(0)->Arg(1)->Arg(2);

void BM_PlanLatencyMasked(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  std::vector<bool> mask(static_cast<std::size_t>(f.model.num_layers()));
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = i % 2 == 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(plan_latency(f.context, mask));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_PlanLatencyMasked)->Arg(0)->Arg(1)->Arg(2);

void BM_MinCutPlan(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_mincut_plan(f.context));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_MinCutPlan)->Arg(0)->Arg(1)->Arg(2);

void BM_UploadOrder(benchmark::State& state) {
  PartitionFixture& f = fixture(ModelName::kInception);
  const UploadPlannerConfig config{
      state.range(0) == 0 ? UploadEnumeration::kExact
                          : UploadEnumeration::kAnchored};
  for (auto _ : state)
    benchmark::DoNotOptimize(plan_upload_order(f.context, f.plan, config));
  state.SetLabel(state.range(0) == 0 ? "exact" : "anchored");
}
BENCHMARK(BM_UploadOrder)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SvrPredict(benchmark::State& state) {
  CampusTraceConfig config;
  config.num_users = 10;
  config.duration = 3600.0;
  const auto traces = generate_campus_traces(config);
  SvrPredictor predictor(5);
  Rng rng(3);
  predictor.fit(traces, rng);
  const auto& points = traces.front().points;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        predictor.predict(std::span<const Point>(points.data(), 10)));
}
BENCHMARK(BM_SvrPredict);

void BM_LiveCutBytes(benchmark::State& state) {
  PartitionFixture& f = fixture(ModelName::kInception);
  for (auto _ : state) benchmark::DoNotOptimize(live_cut_bytes(f.model));
}
BENCHMARK(BM_LiveCutBytes);

// ------------------------------------------- parallel-runtime comparison

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

int run_parallel_bench(const char* json_path, int threads) {
  struct Workload {
    const char* name;
    std::function<void()> run;
  };
  const bench::DatasetPair data = bench::kaist_like(20.0, 3600.0);
  const GpuContentionModel gpu(titan_xp_profile());
  const DnnModel inception = build_inception21k();
  const DnnModel* models[] = {&inception};
  ProfilerConfig prof_config;
  prof_config.max_clients = 8;
  prof_config.samples_per_level = 4;
  ConcurrencyProfiler record_profiler(&gpu, Rng(5));
  const auto records = record_profiler.profile_models(models, prof_config);

  const Workload workloads[] = {
      {"simulator",
       [&] {
         SimulationConfig config;
         config.model = ModelName::kMobileNet;
         config.seed = 97;
         const SimulationWorld world =
             build_world(config, data.train, data.test);
         run_simulation(config, world, nullptr);
       }},
      {"forest_train",
       [&] {
         Rng rng(7);
         RandomForestEstimator forest;
         forest.train(records, rng);
       }},
      {"profiler_sweep", [&] {
         ConcurrencyProfiler profiler(&gpu, Rng(5));
         profiler.profile_models(models, prof_config);
       }}};

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  // `simd` records which kernel produced the fastpath numbers, so the
  // regression gate only applies vector-speedup floors where the vector
  // kernel actually ran.
  std::fprintf(out,
               "{\"hardware_threads\":%d,\"threads\":%d,\"simd\":\"%s\","
               "\"benches\":[",
               par::hardware_threads(), threads, simd::active_kernel());
  bool first = true;
  for (const Workload& w : workloads) {
    par::set_num_threads(1);
    const double serial_s = wall_seconds(w.run);
    par::set_num_threads(threads);
    const double parallel_s = wall_seconds(w.run);
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"serial_s\":%.6f,\"parallel_s\":%.6f,"
                 "\"speedup\":%.3f}",
                 first ? "" : ",", w.name, serial_s, parallel_s, speedup);
    std::printf("%-16s serial %.3fs  %d threads %.3fs  speedup %.2fx\n",
                w.name, serial_s, threads, parallel_s, speedup);
    first = false;
  }

  // --------------------------------- single-query fast-path comparison
  // Baseline legs run the reference implementations (pointer-walking
  // ensembles, full-replan upload scoring); fast legs run the fast path
  // (FlatForest, incremental DP scoring). Both serial, so the ratio is the
  // algorithmic speedup alone (docs: "Single-query fast path" in DESIGN.md).
  par::set_num_threads(1);
  const bool fastpath_was_enabled = fastpath::enabled();

  RandomForestEstimator estimator;
  {
    Rng rng(7);
    estimator.train(records, rng);
  }
  DnnProfile client = profile_on_client(inception, odroid_xu4_profile());
  const DnnProfile server = profile_on_client(inception, titan_xp_profile());
  PartitionContext context;
  context.model = &inception;
  context.client_profile = &client;
  context.server_time = server.client_time;
  const PartitionPlan plan = compute_best_plan(context);

  // Distinct GpuStats per repetition so no cache could short-circuit the
  // sweep: this measures the estimator itself, not memoisation.
  const auto estimate_sweep = [&] {
    GpuStats stats;
    double sink = 0.0;
    for (int i = 0; i < 200; ++i) {
      stats.num_clients = i % 8 + 1;
      stats.kernel_util = 0.1 + 0.001 * i;
      for (const Seconds s : estimator.estimate_model(inception, stats))
        sink += s;
    }
    benchmark::DoNotOptimize(sink);
  };
  const auto upload_sweep = [&](UploadEnumeration enumeration,
                                UploadScoring scoring) {
    for (int i = 0; i < 3; ++i)
      benchmark::DoNotOptimize(plan_upload_order(
          context, plan,
          {.enumeration = enumeration, .scoring = scoring}));
  };

  // Batched-forest kernel: the same FlatForest over the same row block,
  // scalar rows vs the width-8 AVX2 traversal. Both legs go through
  // predict_batch_into, so the ratio isolates the SIMD kernel (the JSON's
  // `simd` field says whether the fast leg actually ran vectorized).
  const bool simd_was_enabled = simd::enabled();
  ml::FlatForest batch_forest;
  {
    ml::Dataset batch_data;
    Rng gen_rng(23);
    for (int i = 0; i < 400; ++i) {
      Vector x(6);
      for (auto& v : x) v = gen_rng.uniform(-2.0, 2.0);
      double y = 0.0;
      for (std::size_t f = 0; f < x.size(); ++f)
        y += (f % 2 == 0 ? 1.0 : -0.5) * x[f] * x[f];
      batch_data.add(std::move(x), y);
    }
    ml::ForestConfig forest_config;
    forest_config.num_trees = 16;
    ml::RandomForest forest(forest_config);
    Rng fit_rng(27);
    forest.fit(batch_data, fit_rng);
    batch_forest = ml::FlatForest::compile(forest);
  }
  const std::size_t batch_rows = 8192;
  std::vector<double> batch_features(batch_rows *
                                     batch_forest.num_features());
  {
    Rng row_rng(29);
    for (double& v : batch_features) v = row_rng.uniform(-3.0, 3.0);
  }
  std::vector<double> batch_out(batch_rows);
  const auto forest_sweep = [&] {
    for (int rep = 0; rep < 24; ++rep)
      batch_forest.predict_batch_into(batch_features.data(),
                                      batch_forest.num_features(), batch_rows,
                                      batch_out.data());
    benchmark::DoNotOptimize(batch_out.data());
  };

  struct FastBench {
    const char* name;
    std::function<void()> baseline;
    std::function<void()> fast;
  };
  const FastBench fast_benches[] = {
      {"estimator_batch",
       [&] {
         fastpath::set_enabled(false);
         estimate_sweep();
       },
       [&] {
         fastpath::set_enabled(true);
         estimate_sweep();
       }},
      {"upload_order_exact",
       [&] {
         upload_sweep(UploadEnumeration::kExact, UploadScoring::kReference);
       },
       [&] {
         upload_sweep(UploadEnumeration::kExact, UploadScoring::kIncremental);
       }},
      {"upload_order_anchored",
       [&] {
         upload_sweep(UploadEnumeration::kAnchored, UploadScoring::kReference);
       },
       [&] {
         upload_sweep(UploadEnumeration::kAnchored,
                      UploadScoring::kIncremental);
       }},
      {"forest_batch",
       [&] {
         simd::set_enabled(false);
         forest_sweep();
       },
       [&] {
         simd::set_enabled(true);  // clamped to build/CPU availability
         forest_sweep();
       }}};

  // Best-of-3 per leg: on a shared runner any single measurement can absorb
  // a scheduler preemption or a noisy neighbour; the minimum of three runs
  // is the closest observable to the code's actual cost, and it keeps the
  // fast-path speedup ratios stable enough to gate on.
  const auto best_of = [](const std::function<void()>& fn) {
    double best = wall_seconds(fn);
    for (int rep = 0; rep < 2; ++rep) best = std::min(best, wall_seconds(fn));
    return best;
  };
  std::fprintf(out, "],\"fastpath\":[");
  first = true;
  for (const FastBench& b : fast_benches) {
    b.fast();  // warm-up: touches every code path and scratch buffer once
    const double baseline_s = best_of(b.baseline);
    const double fast_s = best_of(b.fast);
    const double speedup = fast_s > 0.0 ? baseline_s / fast_s : 0.0;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"baseline_s\":%.6f,\"fast_s\":%.6f,"
                 "\"speedup\":%.3f}",
                 first ? "" : ",", b.name, baseline_s, fast_s, speedup);
    std::printf("%-22s baseline %.3fs  fast %.3fs  speedup %.2fx\n", b.name,
                baseline_s, fast_s, speedup);
    first = false;
  }
  fastpath::set_enabled(fastpath_was_enabled);
  simd::set_enabled(simd_was_enabled);

  // ------------------------------------- steady-state allocation audit
  // Same world shape at two horizons: differencing the operator-new counts
  // cancels the fixed startup allocations (world build happens outside the
  // counted window; initial simulator state is identical), leaving the
  // per-interval heap-allocation rate of the steady-state path.
  const auto count_run = [](const bench::DatasetPair& data_pair) {
    SimulationConfig config;
    config.model = ModelName::kMobileNet;
    config.seed = 97;
    const SimulationWorld world =
        build_world(config, data_pair.train, data_pair.test);
    int intervals = 0;
    for (const auto& t : data_pair.test)
      intervals = std::max(intervals, static_cast<int>(t.points.size()));
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    run_simulation(config, world, nullptr);
    const std::uint64_t allocs =
        g_allocation_count.load(std::memory_order_relaxed) - before;
    return std::pair<std::uint64_t, int>{allocs, intervals};
  };
  const auto [short_allocs, short_intervals] =
      count_run(bench::kaist_like(20.0, 1800.0));
  const auto [long_allocs, long_intervals] =
      count_run(bench::kaist_like(20.0, 3600.0));
  const double per_interval =
      static_cast<double>(long_allocs - short_allocs) /
      static_cast<double>(std::max(1, long_intervals - short_intervals));
  std::fprintf(out,
               "],\"allocations\":{\"short_intervals\":%d,"
               "\"short_total\":%llu,\"long_intervals\":%d,"
               "\"long_total\":%llu,\"per_interval\":%.1f}}\n",
               short_intervals,
               static_cast<unsigned long long>(short_allocs), long_intervals,
               static_cast<unsigned long long>(long_allocs), per_interval);
  std::printf("allocations: %d intervals -> %llu, %d intervals -> %llu "
              "(%.1f allocs/interval steady-state)\n",
              short_intervals,
              static_cast<unsigned long long>(short_allocs), long_intervals,
              static_cast<unsigned long long>(long_allocs), per_interval);
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  argc = perdnn::par::init_threads_from_cli(argc, argv);
  const char* json_path = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (json_path != nullptr)
    return run_parallel_bench(json_path, perdnn::par::num_threads());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
