// Google-benchmark microbenchmarks for the hot algorithmic paths: the
// partitioning DP (runs per query in the simulator), upload-order planning
// (runs per server change), min-cut, and the mobility predictors.
#include <benchmark/benchmark.h>

#include "core/perdnn.hpp"
#include "mobility/predictor.hpp"
#include "mobility/trace_gen.hpp"

namespace {

using namespace perdnn;

struct PartitionFixture {
  DnnModel model;
  DnnProfile client;
  PartitionContext context;
  PartitionPlan plan;

  explicit PartitionFixture(ModelName name) : model(build_model(name)) {
    client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    context.model = &model;
    context.client_profile = &client;
    context.server_time = server.client_time;
    plan = compute_best_plan(context);
  }
};

PartitionFixture& fixture(ModelName name) {
  static PartitionFixture mobilenet(ModelName::kMobileNet);
  static PartitionFixture inception(ModelName::kInception);
  static PartitionFixture resnet(ModelName::kResNet);
  switch (name) {
    case ModelName::kMobileNet: return mobilenet;
    case ModelName::kInception: return inception;
    default: return resnet;
  }
}

void BM_ShortestPathPlan(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_best_plan(f.context));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_ShortestPathPlan)->Arg(0)->Arg(1)->Arg(2);

void BM_PlanLatencyMasked(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  std::vector<bool> mask(static_cast<std::size_t>(f.model.num_layers()));
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = i % 2 == 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(plan_latency(f.context, mask));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_PlanLatencyMasked)->Arg(0)->Arg(1)->Arg(2);

void BM_MinCutPlan(benchmark::State& state) {
  PartitionFixture& f = fixture(static_cast<ModelName>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_mincut_plan(f.context));
  state.SetLabel(f.model.name());
}
BENCHMARK(BM_MinCutPlan)->Arg(0)->Arg(1)->Arg(2);

void BM_UploadOrder(benchmark::State& state) {
  PartitionFixture& f = fixture(ModelName::kInception);
  const UploadPlannerConfig config{
      state.range(0) == 0 ? UploadEnumeration::kExact
                          : UploadEnumeration::kAnchored};
  for (auto _ : state)
    benchmark::DoNotOptimize(plan_upload_order(f.context, f.plan, config));
  state.SetLabel(state.range(0) == 0 ? "exact" : "anchored");
}
BENCHMARK(BM_UploadOrder)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SvrPredict(benchmark::State& state) {
  CampusTraceConfig config;
  config.num_users = 10;
  config.duration = 3600.0;
  const auto traces = generate_campus_traces(config);
  SvrPredictor predictor(5);
  Rng rng(3);
  predictor.fit(traces, rng);
  const auto& points = traces.front().points;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        predictor.predict(std::span<const Point>(points.data(), 10)));
}
BENCHMARK(BM_SvrPredict);

void BM_LiveCutBytes(benchmark::State& state) {
  PartitionFixture& f = fixture(ModelName::kInception);
  for (auto _ : state) benchmark::DoNotOptimize(live_cut_bytes(f.model));
}
BENCHMARK(BM_LiveCutBytes);

}  // namespace

BENCHMARK_MAIN();
