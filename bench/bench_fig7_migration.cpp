// Fig 7 — single-client gain from proactive migration. For each model, a
// client switches to a new edge server and we replay queries under:
//   IONN      — nothing migrated, incremental upload from scratch;
//   PM 100%   — all server-side layers migrated ahead of the client;
//   PM x MB   — only the highest-efficiency x MB migrated (fractional).
// The paper's headline: Inception's peak latency drops 2.8x with only ~9%
// of the model migrated, because its compute-dense conv layers lead the
// efficiency order.
#include <cstdio>

#include "common/table.hpp"
#include "core/perdnn.hpp"

namespace {

using namespace perdnn;

void run_model(ModelName name, Bytes fraction_bytes) {
  OffloadingSession::Options options;
  options.model = name;
  options.profiling.max_clients = 4;
  options.profiling.samples_per_level = 3;
  OffloadingSession session(options);
  const PartitionPlan plan = session.best_plan();
  const UploadSchedule schedule =
      session.upload_schedule(plan, UploadEnumeration::kExact);

  ReplayConfig config;
  config.max_queries = 25;

  struct Case {
    const char* label;
    Bytes initial;
  };
  const Bytes total = schedule.total_bytes();
  const Case cases[] = {
      {"IONN (no migration)", 0},
      {"PM fraction", std::min(fraction_bytes, total)},
      {"PM 100%", total},
  };

  std::printf("\n--- %s: server-side %.1f MB, steady-state %.3f s ---\n",
              model_name_str(name), bytes_to_mb(total), plan.latency);
  TextTable table({"case", "migrated MB", "peak latency s", "first query s",
                   "queries in 15 s"});
  for (const Case& c : cases) {
    const ReplayResult result = session.replay(schedule, c.initial, config);
    table.add_row({c.label, TextTable::num(bytes_to_mb(c.initial), 1),
                   TextTable::num(result.peak_latency(), 3),
                   TextTable::num(result.queries.front().latency, 3),
                   TextTable::num(static_cast<long long>(
                       result.queries_completed_by(15.0)))});
  }
  std::printf("%s", table.to_string().c_str());

  // Per-query series for the figure's curves.
  std::printf("per-query latency series (s):\n");
  for (const Case& c : cases) {
    const ReplayResult result = session.replay(schedule, c.initial, config);
    std::printf("  %-20s", c.label);
    for (std::size_t i = 0; i < result.queries.size(); i += 2)
      std::printf(" %.2f", result.queries[i].latency);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Fig 7: query execution time when changing edge servers "
              "(IONN vs proactive migration) ===\n");
  // Fractions chosen like the paper: ~9%% for Inception (12 MB), and
  // proportionate cuts for the others.
  run_model(ModelName::kInception, mb_to_bytes(12.0));
  run_model(ModelName::kResNet, mb_to_bytes(24.0));
  run_model(ModelName::kMobileNet, mb_to_bytes(4.0));
  return 0;
}
