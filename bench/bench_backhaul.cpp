// Section 4.B.4 — backhaul traffic of proactive migration. Per-server,
// per-interval uplink/downlink byte counters during the Inception
// simulation: peak rates of the most crowded server, and the share of
// servers whose peaks stay under 100 Mbps (wireless-backhaul friendly).
//
// With an output prefix argument (bench_backhaul /tmp/backhaul), the
// per-interval per-server timeseries is additionally dumped to
// <prefix>_<dataset>.csv — the raw data behind the paper's backhaul curves
// (sum uplink_bytes per interval, convert with 8/1e6/interval_s for Mbps).
#include <cstdio>
#include <fstream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "datasets.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace perdnn;
using namespace perdnn::bench;

void run_dataset(const DatasetPair& data, const char* out_prefix) {
  SimulationConfig config;
  config.model = ModelName::kInception;
  config.policy = MigrationPolicy::kProactive;
  config.migration_radius_m = 100.0;
  config.seed = 97;
  const SimulationWorld world = build_world(config, data.train, data.test);
  obs::SimTimeseries timeseries;
  obs::SimTimeseries* recorder = out_prefix != nullptr ? &timeseries : nullptr;
  const SimulationMetrics metrics = run_simulation(config, world, recorder);

  std::printf("\n--- %s: Inception, r=100 m ---\n", data.name);
  TextTable table({"metric", "value"});
  table.add_row({"peak uplink (most crowded server)",
                 TextTable::num(metrics.peak_uplink_mbps, 0) + " Mbps"});
  table.add_row({"peak downlink",
                 TextTable::num(metrics.peak_downlink_mbps, 0) + " Mbps"});
  table.add_row({"servers with peaks <= 100 Mbps",
                 TextTable::num(
                     metrics.fraction_servers_within_100mbps * 100.0, 0) +
                     " %"});
  table.add_row(
      {"servers <= 100 Mbps at the peak-time interval",
       TextTable::num(
           metrics.fraction_servers_within_100mbps_at_peak * 100.0, 0) +
           " %"});
  table.add_row({"total migrated",
                 TextTable::num(bytes_to_mb(metrics.total_migrated_bytes), 0) +
                     " MB"});
  table.add_row({"edge servers",
                 TextTable::num(static_cast<long long>(metrics.num_servers))});
  std::printf("%s", table.to_string().c_str());

  // Distribution of per-server peak uplink rates.
  const auto& peaks = metrics.server_peak_uplink_mbps;
  std::printf("per-server peak uplink percentiles (Mbps): p50=%.0f p90=%.0f "
              "p99=%.0f max=%.0f\n",
              percentile(peaks, 50.0), percentile(peaks, 90.0),
              percentile(peaks, 99.0), percentile(peaks, 100.0));

  if (recorder != nullptr) {
    const std::string path =
        std::string(out_prefix) + "_" + data.name + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      std::exit(1);
    }
    recorder->write_csv(out);
    std::printf("timeseries: %d intervals x %d servers -> %s\n",
                recorder->num_intervals(), recorder->num_servers(),
                path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_prefix = argc > 1 ? argv[1] : nullptr;
  std::printf("=== Section 4.B.4: backhaul traffic of proactive migration "
              "===\n");
  std::printf("paper shape: a few crowded servers need several hundred Mbps; "
              "60-70%% of servers stay under 100 Mbps\n");
  run_dataset(kaist_like(), out_prefix);
  run_dataset(geolife_like(), out_prefix);
  return 0;
}
