// Network sensitivity (NeuroSurgeon-style sweep): how the partitioning plan
// and its latency respond to the wireless uplink rate — the "runtime network
// speed" input of the paper's partitioner. At low bandwidth everything stays
// on the device; as bandwidth grows the cut slides toward the input until
// the whole model offloads; the crossover differs per model shape.
#include <cstdio>

#include "common/table.hpp"
#include "core/perdnn.hpp"

int main() {
  using namespace perdnn;
  std::printf("=== Network sensitivity: plan vs uplink bandwidth "
              "(uncontended server) ===\n");

  const DnnModel models[] = {build_mobilenet_v1(), build_inception21k(),
                             build_resnet50(), build_vgg16()};
  for (const DnnModel& model : models) {
    const DnnProfile client = profile_on_client(model, odroid_xu4_profile());
    const DnnProfile server = profile_on_client(model, titan_xp_profile());
    std::printf("\n--- %s (local %.3f s) ---\n", model.name().c_str(),
                total_client_time(client));
    TextTable table({"uplink Mbps", "plan latency s", "speedup",
                     "server layers", "query bytes up (KB)"});
    for (double mbps : {0.5, 1.0, 2.0, 5.0, 10.0, 35.0, 100.0, 500.0}) {
      PartitionContext context;
      context.model = &model;
      context.client_profile = &client;
      context.server_time = server.client_time;
      context.net.uplink_bytes_per_sec = mbps_to_bytes_per_sec(mbps);
      context.net.downlink_bytes_per_sec =
          mbps_to_bytes_per_sec(mbps * 50.0 / 35.0);
      const PartitionPlan plan = compute_best_plan(context);

      // Bytes the query actually ships uplink under this plan: the live set
      // at the first client->server crossing (0 if fully local).
      const std::vector<Bytes> live = live_cut_bytes(model);
      Bytes query_up = 0;
      ExecLocation at = ExecLocation::kClient;
      for (std::size_t i = 1; i < plan.location.size(); ++i) {
        if (plan.location[i] != at) {
          if (plan.location[i] == ExecLocation::kServer)
            query_up += live[i - 1];
          at = plan.location[i];
        }
      }
      table.add_row(
          {TextTable::num(mbps, 1), TextTable::num(plan.latency, 3),
           TextTable::num(total_client_time(client) / plan.latency, 1) + "x",
           TextTable::num(static_cast<long long>(plan.num_server_layers())),
           TextTable::num(static_cast<double>(query_up) / 1024.0, 0)});
    }
    std::printf("%s", table.to_string().c_str());
  }
  std::printf("\n(low bandwidth pins execution to the device; the crossover "
              "point depends on the\n model's compute density vs its "
              "activation sizes)\n");
  return 0;
}
